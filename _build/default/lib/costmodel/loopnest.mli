(** Loop-nest mapping analysis in the spirit of Timeloop.

    A {e mapping} of an Einsum onto the memory hierarchy is an ordered
    nest of tiled loops (outermost first).  Each loop iterates one index
    over a factor of its extent and lives at a hierarchy level:

    - [Dram] loops stream tiles from off-chip memory into the buffer;
    - [Buffer] loops iterate a tile resident in the on-chip buffer;
    - [Spatial] loops are unrolled across the PE array.

    From the nest, per-tensor data movement follows the classic reuse
    rule: a tensor's tile at a boundary is its footprint over the loops
    below; the tile is re-fetched once per iteration of the loops above,
    except that the {e contiguous run of loops directly above the
    boundary whose index the tensor does not use} reuse the resident
    tile (temporal reuse).  Output tensors additionally count a
    write-back per distinct tile.

    This is the analysis Timeloop performs per Einsum (paper Section
    2.1); the coarser [Strategies] traffic recipes are consistent with
    it (see the cross-checks in the test suite). *)

type level = Dram | Buffer | Spatial

type loop = {
  index : Tf_einsum.Tensor_ref.index;
  extent : int;  (** iterations of this loop (a factor of the full extent) *)
  level : level;
}

type t

val v : ?extents:Tf_einsum.Extents.t -> Tf_einsum.Einsum.t -> loop list -> t
(** Build a mapping, outermost loop first.
    @raise Invalid_argument when loop extents are non-positive, levels
    are not ordered Dram >= Buffer >= Spatial from outer to inner, an
    index is not a dimension of the Einsum, or — when [extents] is given
    — the product of a dimension's loop factors does not equal its full
    extent (every dimension must be fully covered). *)

val op : t -> Tf_einsum.Einsum.t
val loops : t -> loop list

val footprint : t -> tensor:Tf_einsum.Tensor_ref.t -> below:level -> float
(** Elements of [tensor]'s tile once all loops at levels strictly outer
    than [below] have fixed their iteration: the product over the
    tensor's indices of the extents of its loops at [below] and inner. *)

val reads : t -> tensor:Tf_einsum.Tensor_ref.t -> into:level -> float
(** Elements transferred into [into] for [tensor] over the whole
    execution (reuse rule above). *)

val writes : t -> into:level -> float
(** Write-back traffic of the output tensor from [into] to the level
    above: one element per distinct output tile element. *)

val dram_traffic : t -> float
(** Total elements moved between DRAM and the buffer: reads of every
    input plus the output write-back (and the output read-modify-write
    when reduction loops live at the DRAM level). *)

val buffer_occupancy : t -> float
(** Sum of all operand tiles resident in the buffer (footprints below
    [Buffer]). *)

val spatial_lanes : t -> int
(** Product of the spatial loop extents — the PEs the mapping unrolls
    over. *)

val validate : Tf_arch.Arch.t -> t -> (unit, string) result
(** Check the mapping against an architecture: buffer occupancy within
    capacity and spatial lanes within the 2D array. *)

val pp : t Fmt.t
