open Tf_einsum

type stats = { enumerated : int; feasible : int }

(* (dram factor, buffer factor) splits of an extent: power-of-two
   divisors plus the trivial all-resident split. *)
let splits extent =
  let rec pow2 acc v = if v <= extent && extent mod v = 0 then pow2 (v :: acc) (2 * v) else acc in
  let divisors = pow2 [] 1 in
  let pairs = List.map (fun inner -> (extent / inner, inner)) divisors in
  if List.mem (1, extent) pairs then pairs else (1, extent) :: pairs

(* All permutations of a list (dimension counts are small). *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let enumerate ?(max_candidates = 20000) extents op =
  let dims = Einsum.all_dims op in
  let dim_splits = List.map (fun d -> (d, splits (Extents.find extents d))) dims in
  (* Cartesian product of per-dimension splits. *)
  let assignments =
    List.fold_left
      (fun acc (d, options) ->
        List.concat_map (fun assignment -> List.map (fun s -> (d, s) :: assignment) options) acc)
      [ [] ] dim_splits
  in
  let orders = permutations dims in
  let results = ref [] and count = ref 0 in
  (try
     List.iter
       (fun assignment ->
         List.iter
           (fun order ->
             if !count >= max_candidates then raise Exit;
             let dram_loops =
               List.filter_map
                 (fun d ->
                   let outer, _ = List.assoc d assignment in
                   if outer > 1 then Some { Loopnest.index = d; extent = outer; level = Loopnest.Dram }
                   else None)
                 order
             in
             let buffer_loops =
               List.filter_map
                 (fun (d, (_, inner)) ->
                   if inner >= 1 then
                     Some { Loopnest.index = d; extent = inner; level = Loopnest.Buffer }
                   else None)
                 (List.rev assignment)
             in
             incr count;
             results := Loopnest.v ~extents op (dram_loops @ buffer_loops) :: !results)
           orders)
       assignments
   with Exit -> ());
  List.rev !results

let traffic_lower_bound extents op =
  let vol r = float_of_int (Extents.volume extents r) in
  vol op.Einsum.output +. List.fold_left (fun acc r -> acc +. vol r) 0. op.Einsum.inputs

let search ?max_candidates arch extents op =
  let candidates = enumerate ?max_candidates extents op in
  let best = ref None and feasible = ref 0 in
  List.iter
    (fun nest ->
      match Loopnest.validate arch nest with
      | Error _ -> ()
      | Ok () ->
          incr feasible;
          let traffic = Loopnest.dram_traffic nest in
          let occupancy = Loopnest.buffer_occupancy nest in
          let better =
            match !best with
            | None -> true
            | Some (_, t, o) -> traffic < t || (traffic = t && occupancy < o)
          in
          if better then best := Some (nest, traffic, occupancy))
    candidates;
  let stats = { enumerated = List.length candidates; feasible = !feasible } in
  match !best with
  | Some (nest, traffic, _) -> Ok (nest, traffic, stats)
  | None -> Error (Printf.sprintf "no feasible mapping among %d candidates" stats.enumerated)
