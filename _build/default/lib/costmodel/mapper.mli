(** Exhaustive mapper for single Einsums (the role of Timeloop's mapper,
    paper Section 2.1).

    For one operation the mapper enumerates two-level tilings — every
    power-of-two split of each dimension into a DRAM-level factor and a
    buffer-resident factor, under every ordering of the DRAM loops — and
    returns the buffer-feasible mapping with the least DRAM traffic
    (ties broken by smaller buffer occupancy).

    This covers the DRAM-to-buffer level, the same scope as TileSeek's
    outer tiling; the on-chip levels are DPipe's job.  It is used by the
    tests to cross-check the strategies' closed-form traffic recipes and
    is available from the CLI for mapping studies. *)

type stats = {
  enumerated : int;  (** candidate mappings generated *)
  feasible : int;  (** candidates fitting the buffer *)
}

val enumerate :
  ?max_candidates:int -> Tf_einsum.Extents.t -> Tf_einsum.Einsum.t -> Loopnest.t list
(** All candidate mappings, deterministically ordered, truncated at
    [max_candidates] (default 20000).
    @raise Not_found when a dimension of the operation is unbound. *)

val search :
  ?max_candidates:int ->
  Tf_arch.Arch.t ->
  Tf_einsum.Extents.t ->
  Tf_einsum.Einsum.t ->
  (Loopnest.t * float * stats, string) result
(** Best feasible mapping and its DRAM traffic (elements).  [Error] when
    no candidate fits the buffer. *)

val traffic_lower_bound : Tf_einsum.Extents.t -> Tf_einsum.Einsum.t -> float
(** Compulsory traffic: every operand once (inputs read + output
    written) — no mapping can beat it. *)
