open Tf_einsum

type level = Dram | Buffer | Spatial

type loop = { index : Tensor_ref.index; extent : int; level : level }

type t = { op : Einsum.t; nest : loop list (* outermost first *) }

let level_rank = function Dram -> 0 | Buffer -> 1 | Spatial -> 2

let v ?extents op nest =
  List.iter
    (fun l ->
      if l.extent < 1 then
        invalid_arg (Printf.sprintf "Loopnest.v: non-positive extent for %s" l.index))
    nest;
  (* Levels must be ordered outer-to-inner: Dram, then Buffer, then
     Spatial. *)
  let rec check_order = function
    | a :: (b :: _ as rest) ->
        if level_rank a.level > level_rank b.level then
          invalid_arg "Loopnest.v: levels must be ordered Dram, Buffer, Spatial outer to inner";
        check_order rest
    | _ -> ()
  in
  check_order nest;
  let dims = Einsum.all_dims op in
  List.iter
    (fun l ->
      if not (List.mem l.index dims) then
        invalid_arg (Printf.sprintf "Loopnest.v: %s is not a dimension of %s" l.index op.Einsum.name))
    nest;
  (* When full extents are supplied, every dimension must be fully
     covered by its loop factors. *)
  (match extents with
  | None -> ()
  | Some extents ->
      let coverage index =
        List.fold_left (fun acc l -> if l.index = index then acc * l.extent else acc) 1 nest
      in
      List.iter
        (fun index ->
          let full = Extents.find extents index in
          if coverage index <> full then
            invalid_arg
              (Printf.sprintf "Loopnest.v: dimension %s covered %d of %d" index (coverage index)
                 full))
        dims);
  { op; nest }

let op t = t.op
let loops t = t.nest

let relevant (tensor : Tensor_ref.t) index = List.mem index tensor.Tensor_ref.indices

let footprint t ~tensor ~below =
  let boundary = level_rank below in
  List.fold_left
    (fun acc l ->
      if level_rank l.level >= boundary && relevant tensor l.index then
        acc *. float_of_int l.extent
      else acc)
    1. t.nest

(* The refetch factor of a tensor across the loops outer than [into]:
   walking upward from the boundary, the contiguous run of loops whose
   index the tensor does not use reuses the resident tile; the first
   relevant loop and everything above it multiply. *)
let refetch_factor t ~tensor ~into =
  let boundary = level_rank into in
  let above = List.filter (fun l -> level_rank l.level < boundary) t.nest in
  (* [above] is outermost-first; walk from the innermost upward. *)
  let rec walk = function
    | [] -> 1.
    | l :: outer ->
        (* [l] is the innermost remaining loop. *)
        if relevant tensor l.index then
          float_of_int l.extent
          *. List.fold_left (fun acc o -> acc *. float_of_int o.extent) 1. outer
        else walk outer
  in
  walk (List.rev above)

let reads t ~tensor ~into = footprint t ~tensor ~below:into *. refetch_factor t ~tensor ~into

let writes t ~into =
  footprint t ~tensor:t.op.Einsum.output ~below:into
  *. refetch_factor t ~tensor:t.op.Einsum.output ~into

let distinct_output_tiles t ~into =
  let boundary = level_rank into in
  let out = t.op.Einsum.output in
  footprint t ~tensor:out ~below:into
  *. List.fold_left
       (fun acc l ->
         if level_rank l.level < boundary && relevant out l.index then
           acc *. float_of_int l.extent
         else acc)
       1. t.nest

let dram_traffic t =
  let input_reads =
    List.fold_left (fun acc tensor -> acc +. reads t ~tensor ~into:Buffer) 0. t.op.Einsum.inputs
  in
  (* Output spills: every refetched tile is written back; refetches beyond
     the distinct tiles are read-modify-write passes that also read the
     partial back in. *)
  let spills = writes t ~into:Buffer in
  let distinct = distinct_output_tiles t ~into:Buffer in
  input_reads +. spills +. Float.max 0. (spills -. distinct)

let buffer_occupancy t =
  List.fold_left
    (fun acc tensor -> acc +. footprint t ~tensor ~below:Buffer)
    0.
    (t.op.Einsum.output :: t.op.Einsum.inputs)

let spatial_lanes t =
  List.fold_left (fun acc l -> if l.level = Spatial then acc * l.extent else acc) 1 t.nest

let validate (arch : Tf_arch.Arch.t) t =
  let occupancy = buffer_occupancy t in
  let capacity = float_of_int (Tf_arch.Arch.buffer_elements arch) in
  if occupancy > capacity then
    Error
      (Printf.sprintf "buffer occupancy %.0f exceeds capacity %.0f elements" occupancy capacity)
  else
    let lanes = spatial_lanes t in
    let pes = Tf_arch.Pe_array.num_pes arch.Tf_arch.Arch.pe_2d in
    if lanes > pes then Error (Printf.sprintf "spatial unroll %d exceeds %d PEs" lanes pes)
    else Ok ()

let level_to_string = function Dram -> "dram" | Buffer -> "buffer" | Spatial -> "spatial"

let pp ppf t =
  Fmt.pf ppf "map %s:@." t.op.Einsum.name;
  List.iter
    (fun l -> Fmt.pf ppf "  for %s in 0..%d  @@ %s@." l.index l.extent (level_to_string l.level))
    t.nest
