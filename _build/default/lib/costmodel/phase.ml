type layer_kind = Qkv | Mha | Layernorm | Ffn | Fused_stack

type execution = {
  makespan_cycles : float;
  useful_2d_slots : float;
  useful_1d_slots : float;
}

type t = {
  name : string;
  kind : layer_kind;
  traffic : Traffic.t;
  execution : execution;
  parts : (layer_kind * float) list;
}

let v ?(parts = []) ~name ~kind ~traffic ~execution () =
  { name; kind; traffic; execution; parts }

let sequential_execution arch ~matrix_load ~vector_load =
  let open Tf_arch in
  let pes_2d = Arch.effective_pes arch Arch.Pe_2d ~matrix:true in
  let pes_1d = Arch.effective_pes arch Arch.Pe_1d ~matrix:false in
  {
    makespan_cycles = (matrix_load /. pes_2d) +. (vector_load /. pes_1d);
    useful_2d_slots = matrix_load;
    useful_1d_slots = vector_load;
  }

let scale k t =
  {
    t with
    traffic = Traffic.scale k t.traffic;
    execution =
      {
        makespan_cycles = k *. t.execution.makespan_cycles;
        useful_2d_slots = k *. t.execution.useful_2d_slots;
        useful_1d_slots = k *. t.execution.useful_1d_slots;
      };
  }

let layer_kind_to_string = function
  | Qkv -> "QKV"
  | Mha -> "MHA"
  | Layernorm -> "LayerNorm"
  | Ffn -> "FFN"
  | Fused_stack -> "Fused"

let pp ppf t =
  Fmt.pf ppf "%s[%s] cycles=%.3e 2d=%.3e 1d=%.3e" t.name (layer_kind_to_string t.kind)
    t.execution.makespan_cycles t.execution.useful_2d_slots t.execution.useful_1d_slots
