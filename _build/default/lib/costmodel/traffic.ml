type t = {
  dram_reads : float;
  dram_writes : float;
  buffer_reads : float;
  buffer_writes : float;
  regfile_accesses : float;
  macs : float;
  vector_ops : float;
}

let zero =
  {
    dram_reads = 0.;
    dram_writes = 0.;
    buffer_reads = 0.;
    buffer_writes = 0.;
    regfile_accesses = 0.;
    macs = 0.;
    vector_ops = 0.;
  }

let add a b =
  {
    dram_reads = a.dram_reads +. b.dram_reads;
    dram_writes = a.dram_writes +. b.dram_writes;
    buffer_reads = a.buffer_reads +. b.buffer_reads;
    buffer_writes = a.buffer_writes +. b.buffer_writes;
    regfile_accesses = a.regfile_accesses +. b.regfile_accesses;
    macs = a.macs +. b.macs;
    vector_ops = a.vector_ops +. b.vector_ops;
  }

let sum = List.fold_left add zero

let scale k t =
  {
    dram_reads = k *. t.dram_reads;
    dram_writes = k *. t.dram_writes;
    buffer_reads = k *. t.buffer_reads;
    buffer_writes = k *. t.buffer_writes;
    regfile_accesses = k *. t.regfile_accesses;
    macs = k *. t.macs;
    vector_ops = k *. t.vector_ops;
  }

let dram_elements t = t.dram_reads +. t.dram_writes
let dram_bytes ~element_bytes t = dram_elements t *. float_of_int element_bytes
let compute_ops t = t.macs +. t.vector_ops

let pp ppf t =
  Fmt.pf ppf "dram(r=%.3e w=%.3e) buf(r=%.3e w=%.3e) rf=%.3e macs=%.3e vec=%.3e" t.dram_reads
    t.dram_writes t.buffer_reads t.buffer_writes t.regfile_accesses t.macs t.vector_ops
