lib/costmodel/loopnest.ml: Einsum Extents Float Fmt List Printf Tensor_ref Tf_arch Tf_einsum
