lib/costmodel/traffic.mli: Fmt
