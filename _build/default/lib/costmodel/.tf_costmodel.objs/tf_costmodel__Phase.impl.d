lib/costmodel/phase.ml: Arch Fmt Tf_arch Traffic
