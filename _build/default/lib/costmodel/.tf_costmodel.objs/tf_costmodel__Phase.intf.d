lib/costmodel/phase.mli: Fmt Tf_arch Traffic
