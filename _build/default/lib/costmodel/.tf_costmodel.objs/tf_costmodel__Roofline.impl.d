lib/costmodel/roofline.ml: Arch Float Fmt List Pe_array Phase Tf_arch Tf_einsum Traffic
