lib/costmodel/latency.mli: Fmt Phase Tf_arch
