lib/costmodel/roofline.mli: Fmt Phase Tf_arch Tf_einsum
