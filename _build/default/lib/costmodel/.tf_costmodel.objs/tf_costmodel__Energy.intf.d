lib/costmodel/energy.mli: Fmt Tf_arch Traffic
