lib/costmodel/loopnest.mli: Fmt Tf_arch Tf_einsum
