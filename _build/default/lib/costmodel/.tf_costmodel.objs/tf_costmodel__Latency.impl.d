lib/costmodel/latency.ml: Arch Float Fmt Hashtbl List Option Pe_array Phase Tf_arch Traffic
