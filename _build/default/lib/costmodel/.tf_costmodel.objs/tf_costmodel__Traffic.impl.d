lib/costmodel/traffic.ml: Fmt List
