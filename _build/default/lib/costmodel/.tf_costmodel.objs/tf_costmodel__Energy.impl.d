lib/costmodel/energy.ml: Arch Energy_table Fmt Tf_arch Traffic
