lib/costmodel/mapper.ml: Einsum Extents List Loopnest Printf Tf_einsum
