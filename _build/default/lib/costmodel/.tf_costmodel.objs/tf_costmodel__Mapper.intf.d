lib/costmodel/mapper.mli: Loopnest Tf_arch Tf_einsum
