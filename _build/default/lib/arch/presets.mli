(** The evaluated architectures (paper Table 3 and Section 6.1).

    | Name      | 2D PE     | 1D PE | Buffer | DRAM BW  |
    |-----------|-----------|-------|--------|----------|
    | cloud     | 256 x 256 | 256   | 16 MB  | 400 GB/s |
    | edge      | 16 x 16   | 256   | 5 MB   | 30 GB/s  |
    | edge_32   | 32 x 32   | 256   | 5 MB   | 30 GB/s  |
    | edge_64   | 64 x 64   | 256   | 8 MB   | 30 GB/s  |

    The 32x32 and 64x64 variants are the "generalization across
    computational capability" study of Figure 9 (the paper raises the
    buffer to 8 MB for the 64x64 configuration). *)

val cloud : Arch.t
val edge : Arch.t
val edge_32 : Arch.t
val edge_64 : Arch.t

val all : Arch.t list

val by_name : string -> Arch.t option
(** Lookup by preset name ("cloud", "edge", "edge_32", "edge_64"). *)
