(** Accelergy-style compound-component estimation (paper Section 2.1).

    Accelergy derives the energy of architectural actions from primitive
    component tables at a technology node; compound components (a MAC, a
    PE with its register file, a banked SRAM) compose primitives.  This
    module provides the same derivation for the components our
    architectures use, at the paper's 45 nm node, and is the source of
    {!Energy_table.default_45nm}-class numbers:

    - arithmetic primitives follow the published 45 nm figures
      (Horowitz, ISSCC'14): fp16 add 0.4 pJ, fp16 mul 1.1 pJ;
    - SRAM access energy scales with the square root of capacity
      (wordline/bitline model) and is amortised over the row width;
    - DRAM access energy is per 16-bit element off-chip.

    Areas are first-order estimates for sanity checks and the area
    report of the CLI; they are not used by the performance model. *)

type primitive = { energy_pj : float; area_um2 : float }

type t = {
  node_nm : int;
  fp_add : primitive;
  fp_mul : primitive;
  regfile_access : primitive;  (** one 16-bit register-file port event *)
  sram_8kb_row : primitive;  (** one row access of an 8 KB SRAM macro *)
  dram_element_pj : float;  (** off-chip access per 16-bit element *)
  sram_bit_area_um2 : float;
}

val node_45nm : t

val scale_to_node : t -> target_nm:int -> t
(** First-order constant-field scaling: energy and area scale with
    (target/node)^2.  @raise Invalid_argument on non-positive target. *)

val mac : t -> primitive
(** A fused multiply-accumulate: fp_mul + fp_add. *)

val buffer_access_pj : t -> capacity_bytes:int -> row_bytes:int -> float
(** Energy per 16-bit element of one buffer access: the 8 KB row-access
    energy scaled by sqrt(capacity / 8KB), amortised over the elements
    of a row.  @raise Invalid_argument on non-positive sizes. *)

val energy_table : ?node:t -> ?buffer_bytes:int -> ?row_bytes:int -> unit -> Energy_table.t
(** Derive a full {!Energy_table.t} (defaults: the 45 nm node, a 16 MB
    buffer, 256-byte rows).  The derived table lands within a small
    factor of {!Energy_table.default_45nm}, which the test suite
    asserts. *)

val pe_area_mm2 : t -> regfile_entries:int -> float
(** One PE: a MAC plus its register file. *)

val arch_area_mm2 : t -> Arch.t -> float
(** First-order die area: all PEs of both arrays plus the buffer SRAM. *)
