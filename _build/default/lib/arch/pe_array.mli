(** Processing-element arrays.

    The simulated architecture (paper Figure 1) has two compute arrays: a
    2D spatial array for matrix-dense work and a 1D array for streaming and
    vector work.  An array is characterised by its shape; throughput is one
    scalar operation per PE per cycle. *)

type shape = One_d of int | Two_d of int * int

type t = { name : string; shape : shape }

val one_d : ?name:string -> int -> t
(** A 1D array of the given width.  @raise Invalid_argument on width < 1. *)

val two_d : ?name:string -> int -> int -> t
(** [two_d rows cols].  @raise Invalid_argument on non-positive dims. *)

val num_pes : t -> int
(** Total PE count — the [NumPEs] term of paper Eq. 41. *)

val rows : t -> int
(** Rows of a 2D array; the width of a 1D array. *)

val cols : t -> int
(** Columns of a 2D array; [1] for a 1D array. *)

val is_two_d : t -> bool

val pp : t Fmt.t
