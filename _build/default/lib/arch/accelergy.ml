type primitive = { energy_pj : float; area_um2 : float }

type t = {
  node_nm : int;
  fp_add : primitive;
  fp_mul : primitive;
  regfile_access : primitive;
  sram_8kb_row : primitive;
  dram_element_pj : float;
  sram_bit_area_um2 : float;
}

(* Published 45 nm figures (Horowitz, ISSCC'14; Accelergy component
   tables), 16-bit datapath. *)
let node_45nm =
  {
    node_nm = 45;
    fp_add = { energy_pj = 0.4; area_um2 = 1360. };
    fp_mul = { energy_pj = 1.1; area_um2 = 1640. };
    regfile_access = { energy_pj = 0.15; area_um2 = 120. };
    sram_8kb_row = { energy_pj = 10.; area_um2 = 0. };
    dram_element_pj = 200.;
    sram_bit_area_um2 = 0.3;
  }

let scale_to_node t ~target_nm =
  if target_nm < 1 then invalid_arg "Accelergy.scale_to_node: non-positive node";
  let k = float_of_int target_nm /. float_of_int t.node_nm in
  let k2 = k *. k in
  let prim p = { energy_pj = p.energy_pj *. k2; area_um2 = p.area_um2 *. k2 } in
  {
    node_nm = target_nm;
    fp_add = prim t.fp_add;
    fp_mul = prim t.fp_mul;
    regfile_access = prim t.regfile_access;
    sram_8kb_row = prim t.sram_8kb_row;
    dram_element_pj = t.dram_element_pj *. k2;
    sram_bit_area_um2 = t.sram_bit_area_um2 *. k2;
  }

let mac t =
  {
    energy_pj = t.fp_add.energy_pj +. t.fp_mul.energy_pj;
    area_um2 = t.fp_add.area_um2 +. t.fp_mul.area_um2;
  }

let buffer_access_pj t ~capacity_bytes ~row_bytes =
  if capacity_bytes < 1 || row_bytes < 1 then
    invalid_arg "Accelergy.buffer_access_pj: non-positive size";
  let base_capacity = 8. *. 1024. in
  let row_energy = t.sram_8kb_row.energy_pj *. sqrt (float_of_int capacity_bytes /. base_capacity) in
  let elements_per_row = Float.max 1. (float_of_int row_bytes /. 2.) in
  row_energy /. elements_per_row

let energy_table ?(node = node_45nm) ?(buffer_bytes = 16 * 1024 * 1024) ?(row_bytes = 256) () =
  {
    Energy_table.dram_access_pj = node.dram_element_pj;
    buffer_access_pj = buffer_access_pj node ~capacity_bytes:buffer_bytes ~row_bytes;
    regfile_access_pj = node.regfile_access.energy_pj;
    mac_pj = (mac node).energy_pj;
    vector_op_pj = node.fp_add.energy_pj;
  }

let pe_area_mm2 t ~regfile_entries =
  ((mac t).area_um2 +. (float_of_int regfile_entries *. t.regfile_access.area_um2)) /. 1e6

let arch_area_mm2 t (arch : Arch.t) =
  let pes = Pe_array.num_pes arch.Arch.pe_2d + Pe_array.num_pes arch.Arch.pe_1d in
  let pe_area = float_of_int pes *. pe_area_mm2 t ~regfile_entries:10 in
  let buffer_bits = float_of_int arch.Arch.buffer_bytes *. 8. in
  let buffer_area = buffer_bits *. t.sram_bit_area_um2 /. 1e6 in
  pe_area +. buffer_area
