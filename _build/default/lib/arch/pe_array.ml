type shape = One_d of int | Two_d of int * int
type t = { name : string; shape : shape }

let one_d ?(name = "1D") width =
  if width < 1 then invalid_arg "Pe_array.one_d: width < 1";
  { name; shape = One_d width }

let two_d ?(name = "2D") rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Pe_array.two_d: non-positive dimension";
  { name; shape = Two_d (rows, cols) }

let num_pes t = match t.shape with One_d w -> w | Two_d (r, c) -> r * c
let rows t = match t.shape with One_d w -> w | Two_d (r, _) -> r
let cols t = match t.shape with One_d _ -> 1 | Two_d (_, c) -> c
let is_two_d t = match t.shape with Two_d _ -> true | One_d _ -> false

let pp ppf t =
  match t.shape with
  | One_d w -> Fmt.pf ppf "%s[%d]" t.name w
  | Two_d (r, c) -> Fmt.pf ppf "%s[%dx%d]" t.name r c
