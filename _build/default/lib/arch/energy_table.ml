type t = {
  dram_access_pj : float;
  buffer_access_pj : float;
  regfile_access_pj : float;
  mac_pj : float;
  vector_op_pj : float;
}

let default_45nm =
  {
    dram_access_pj = 200.0;
    buffer_access_pj = 6.0;
    regfile_access_pj = 0.3;
    mac_pj = 1.0;
    vector_op_pj = 0.5;
  }

let scale k t =
  {
    dram_access_pj = k *. t.dram_access_pj;
    buffer_access_pj = k *. t.buffer_access_pj;
    regfile_access_pj = k *. t.regfile_access_pj;
    mac_pj = k *. t.mac_pj;
    vector_op_pj = k *. t.vector_op_pj;
  }

let pp ppf t =
  Fmt.pf ppf "dram=%.1fpJ buffer=%.1fpJ rf=%.2fpJ mac=%.2fpJ alu=%.2fpJ" t.dram_access_pj
    t.buffer_access_pj t.regfile_access_pj t.mac_pj t.vector_op_pj
