lib/arch/arch.mli: Energy_table Fmt Pe_array
