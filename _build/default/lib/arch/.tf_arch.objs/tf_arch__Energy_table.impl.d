lib/arch/energy_table.ml: Fmt
