lib/arch/arch.ml: Energy_table Fmt Pe_array Printf
