lib/arch/accelergy.mli: Arch Energy_table
