lib/arch/pe_array.mli: Fmt
