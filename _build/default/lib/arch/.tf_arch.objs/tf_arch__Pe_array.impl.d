lib/arch/pe_array.ml: Fmt
