lib/arch/accelergy.ml: Arch Energy_table Float Pe_array
