lib/arch/presets.ml: Arch List Pe_array
