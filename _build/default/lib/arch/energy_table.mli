(** Per-event energy constants at the 45 nm node.

    Stands in for Accelergy (paper Section 2.1): each access to a memory
    level and each PE operation costs a fixed energy.  The defaults follow
    the widely used 45 nm figures (Horowitz, ISSCC'14; Accelergy component
    tables): off-chip DRAM is two orders of magnitude above large on-chip
    SRAM, which is an order above a register file, which is comparable to a
    16-bit MAC.  All values are picojoules per 16-bit element event. *)

type t = {
  dram_access_pj : float;  (** off-chip memory, per element transferred *)
  buffer_access_pj : float;  (** on-chip global buffer, per element *)
  regfile_access_pj : float;  (** PE-local register file, per element *)
  mac_pj : float;  (** one 16-bit multiply-accumulate *)
  vector_op_pj : float;  (** one scalar ALU slot on either array *)
}

val default_45nm : t

val scale : float -> t -> t
(** Multiply every entry — used for technology-node what-if studies. *)

val pp : t Fmt.t
