type resource = Pe_1d | Pe_2d

type t = {
  name : string;
  pe_2d : Pe_array.t;
  pe_1d : Pe_array.t;
  buffer_bytes : int;
  dram_bw_bytes_per_s : float;
  clock_hz : float;
  element_bytes : int;
  vector_eff_2d : float;
  matrix_eff_1d : float;
  energy : Energy_table.t;
}

let v ?(clock_hz = 1e9) ?(element_bytes = 2) ?(vector_eff_2d = 0.25) ?(matrix_eff_1d = 1.0)
    ?(energy = Energy_table.default_45nm) ~name ~pe_2d ~pe_1d ~buffer_bytes ~dram_bw_bytes_per_s ()
    =
  if buffer_bytes < 1 then invalid_arg "Arch.v: buffer_bytes < 1";
  if dram_bw_bytes_per_s <= 0. then invalid_arg "Arch.v: non-positive bandwidth";
  if clock_hz <= 0. then invalid_arg "Arch.v: non-positive clock";
  if element_bytes < 1 then invalid_arg "Arch.v: element_bytes < 1";
  let check_eff label e =
    if not (e > 0. && e <= 1.) then invalid_arg (Printf.sprintf "Arch.v: %s outside (0,1]" label)
  in
  check_eff "vector_eff_2d" vector_eff_2d;
  check_eff "matrix_eff_1d" matrix_eff_1d;
  {
    name;
    pe_2d;
    pe_1d;
    buffer_bytes;
    dram_bw_bytes_per_s;
    clock_hz;
    element_bytes;
    vector_eff_2d;
    matrix_eff_1d;
    energy;
  }

let array_of t = function Pe_1d -> t.pe_1d | Pe_2d -> t.pe_2d

let effective_pes t resource ~matrix =
  let peak = float_of_int (Pe_array.num_pes (array_of t resource)) in
  match (resource, matrix) with
  | Pe_2d, true -> peak
  | Pe_2d, false -> peak *. t.vector_eff_2d
  | Pe_1d, true -> peak *. t.matrix_eff_1d
  | Pe_1d, false -> peak

let buffer_elements t = t.buffer_bytes / t.element_bytes
let bytes_to_seconds t bytes = bytes /. t.dram_bw_bytes_per_s
let cycles_to_seconds t cycles = cycles /. t.clock_hz

let resource_to_string = function Pe_1d -> "1D" | Pe_2d -> "2D"
let pp_resource ppf r = Fmt.string ppf (resource_to_string r)

let pp ppf t =
  Fmt.pf ppf "%s: 2D=%a 1D=%a buffer=%dMB bw=%.0fGB/s clk=%.1fGHz" t.name Pe_array.pp t.pe_2d
    Pe_array.pp t.pe_1d
    (t.buffer_bytes / (1024 * 1024))
    (t.dram_bw_bytes_per_s /. 1e9)
    (t.clock_hz /. 1e9)
