let mib n = n * 1024 * 1024
let gbps n = float_of_int n *. 1e9

let cloud =
  Arch.v ~name:"cloud"
    ~pe_2d:(Pe_array.two_d 256 256)
    ~pe_1d:(Pe_array.one_d 256)
    ~buffer_bytes:(mib 16) ~dram_bw_bytes_per_s:(gbps 400) ()

let edge =
  Arch.v ~name:"edge"
    ~pe_2d:(Pe_array.two_d 16 16)
    ~pe_1d:(Pe_array.one_d 256)
    ~buffer_bytes:(mib 5) ~dram_bw_bytes_per_s:(gbps 30) ()

let edge_32 =
  Arch.v ~name:"edge_32"
    ~pe_2d:(Pe_array.two_d 32 32)
    ~pe_1d:(Pe_array.one_d 256)
    ~buffer_bytes:(mib 5) ~dram_bw_bytes_per_s:(gbps 30) ()

let edge_64 =
  Arch.v ~name:"edge_64"
    ~pe_2d:(Pe_array.two_d 64 64)
    ~pe_1d:(Pe_array.one_d 256)
    ~buffer_bytes:(mib 8) ~dram_bw_bytes_per_s:(gbps 30) ()

let all = [ cloud; edge; edge_32; edge_64 ]

let by_name name = List.find_opt (fun (a : Arch.t) -> a.name = name) all
