(** Full accelerator specification (paper Figure 1 / Table 3).

    An architecture couples the two PE arrays, the shared on-chip buffer,
    the DRAM channel, a clock, and the efficiency factors that govern
    cross-array offloading:

    - [vector_eff_2d] — the fraction of peak the 2D array sustains on
      vector (map/reduce) work.  A systolic array executes element-wise
      work without its weight-stationary reuse, so it runs below peak; this
      single factor is what makes offloading LayerNorm/softmax pieces to
      the 2D array profitable on cloud but not free (paper Section 6.2,
      utilization discussion).
    - [matrix_eff_1d] — the fraction of peak the 1D array sustains on
      contraction work; the default of 1.0 reflects that both arrays are
      built from the same MAC-capable PEs (Figure 1) and a 1D array
      streams dot products at full rate. *)

type resource = Pe_1d | Pe_2d

type t = {
  name : string;
  pe_2d : Pe_array.t;
  pe_1d : Pe_array.t;
  buffer_bytes : int;  (** on-chip global buffer capacity *)
  dram_bw_bytes_per_s : float;
  clock_hz : float;
  element_bytes : int;  (** datatype width; 2 for fp16 *)
  vector_eff_2d : float;
  matrix_eff_1d : float;
  energy : Energy_table.t;
}

val v :
  ?clock_hz:float ->
  ?element_bytes:int ->
  ?vector_eff_2d:float ->
  ?matrix_eff_1d:float ->
  ?energy:Energy_table.t ->
  name:string ->
  pe_2d:Pe_array.t ->
  pe_1d:Pe_array.t ->
  buffer_bytes:int ->
  dram_bw_bytes_per_s:float ->
  unit ->
  t
(** Build a specification.  Defaults: 1 GHz clock, 2-byte elements,
    [vector_eff_2d = 0.25], [matrix_eff_1d = 1.0], 45 nm energies.
    @raise Invalid_argument on non-positive capacities or efficiencies
    outside of (0, 1]. *)

val array_of : t -> resource -> Pe_array.t

val effective_pes : t -> resource -> matrix:bool -> float
(** PE throughput (scalar slots per cycle) the resource sustains for matrix
    or vector work, after the efficiency factors. *)

val buffer_elements : t -> int
(** Buffer capacity in elements. *)

val bytes_to_seconds : t -> float -> float
(** Transfer time of a byte volume over the DRAM channel. *)

val cycles_to_seconds : t -> float -> float

val resource_to_string : resource -> string
val pp_resource : resource Fmt.t
val pp : t Fmt.t
