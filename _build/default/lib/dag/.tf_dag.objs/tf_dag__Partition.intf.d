lib/dag/partition.mli: Dag Fmt
