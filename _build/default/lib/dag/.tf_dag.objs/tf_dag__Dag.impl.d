lib/dag/dag.ml: Fmt Hashtbl Int List Map Printf Queue Set
