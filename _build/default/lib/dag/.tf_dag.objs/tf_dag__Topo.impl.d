lib/dag/topo.ml: Dag Float Hashtbl Int List Set
