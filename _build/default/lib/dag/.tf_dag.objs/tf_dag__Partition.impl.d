lib/dag/partition.ml: Dag Fmt Hashtbl List Topo
