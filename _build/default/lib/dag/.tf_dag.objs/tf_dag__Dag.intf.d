lib/dag/dag.mli: Fmt Hashtbl
