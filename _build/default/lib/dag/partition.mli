(** Constrained bipartitions of an Einsum DAG (DPipe, paper Section 4.1).

    DPipe splits the computation DAG into two subgraphs [(first, second)]
    that will execute as overlapped pipeline stages.  A bipartition is valid
    when all four of the paper's constraints hold:

    + {b Source-sink alignment}: every source node of the DAG is in [first]
      and every sink node is in [second].
    + {b Weak connectivity}: both induced subgraphs are weakly connected.
    + {b Dependency completeness}: [first] is predecessor-closed — every
      dependency of a node of [first] is itself in [first].
    + {b Reachability}: every node of [first] is reachable from a DAG source
      using only nodes of [first]. *)

type t = { first : int list; second : int list }
(** A bipartition.  Both lists are sorted ascending and disjoint; their
    union is the node set of the DAG. *)

val is_valid : 'a Dag.t -> t -> bool
(** Check the four constraints (plus that the two sides really partition the
    node set). *)

val enumerate : ?limit:int -> 'a Dag.t -> t list
(** All valid bipartitions, at most [limit] (default [512]), deterministic
    order.  Enumeration walks predecessor-closed subsets directly, so it is
    far cheaper than scanning the powerset.  Both sides must be non-empty.
    @raise Invalid_argument on a cyclic graph. *)

val split_sizes : t -> int * int
(** Sizes of (first, second). *)

val pp : t Fmt.t
