let sort g =
  let indeg = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace indeg id (Dag.in_degree g id)) (Dag.nodes g);
  (* A sorted-set frontier gives the deterministic smallest-id-first order. *)
  let module Iset = Set.Make (Int) in
  let frontier = ref Iset.empty in
  Hashtbl.iter (fun id d -> if d = 0 then frontier := Iset.add id !frontier) indeg;
  let rec loop acc =
    match Iset.min_elt_opt !frontier with
    | None -> List.rev acc
    | Some id ->
        frontier := Iset.remove id !frontier;
        List.iter
          (fun v ->
            let d = Hashtbl.find indeg v - 1 in
            Hashtbl.replace indeg v d;
            if d = 0 then frontier := Iset.add v !frontier)
          (Dag.succs g id);
        loop (id :: acc)
  in
  let order = loop [] in
  if List.length order <> Dag.node_count g then invalid_arg "Topo.sort: graph has a cycle";
  order

let is_valid g order =
  List.length order = Dag.node_count g
  && List.for_all (Dag.mem g) order
  && List.length (List.sort_uniq compare order) = List.length order
  &&
  let position = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace position id i) order;
  List.for_all
    (fun (u, v) -> Hashtbl.find position u < Hashtbl.find position v)
    (Dag.edges g)

let all ?(limit = 256) g =
  let indeg = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace indeg id (Dag.in_degree g id)) (Dag.nodes g);
  let n = Dag.node_count g in
  let results = ref [] and found = ref 0 in
  (* Depth-first enumeration over the frontier, visiting candidates in
     ascending id order so output is lexicographic. *)
  let rec go depth acc frontier =
    if !found < limit then
      if depth = n then begin
        incr found;
        results := List.rev acc :: !results
      end
      else
        List.iter
          (fun id ->
            let opened =
              List.filter
                (fun v ->
                  let d = Hashtbl.find indeg v - 1 in
                  Hashtbl.replace indeg v d;
                  d = 0)
                (Dag.succs g id)
            in
            let frontier' = List.merge compare opened (List.filter (fun x -> x <> id) frontier) in
            go (depth + 1) (id :: acc) frontier';
            List.iter
              (fun v -> Hashtbl.replace indeg v (Hashtbl.find indeg v + 1))
              (Dag.succs g id))
          frontier
  in
  let initial = List.filter (fun id -> Hashtbl.find indeg id = 0) (Dag.nodes g) in
  go 0 [] initial;
  List.rev !results

let count_at_most ~limit g = List.length (all ~limit g)

let longest_path_length g ~weight =
  let order = sort g in
  let dist = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let from_preds =
        List.fold_left (fun acc p -> Float.max acc (Hashtbl.find dist p)) 0. (Dag.preds g id)
      in
      Hashtbl.replace dist id (from_preds +. weight id))
    order;
  Hashtbl.fold (fun _ d acc -> Float.max acc d) dist 0.
