(** Topological orderings of a DAG.

    DPipe evaluates candidate pipeline schedules, each derived from one
    topological ordering of the (bipartitioned, root-augmented) Einsum DAG.
    Enumerating every ordering is factorial in the worst case, so the
    enumerator is bounded. *)

val sort : 'a Dag.t -> int list
(** One topological order (Kahn's algorithm, smallest-id-first so the result
    is deterministic).  @raise Invalid_argument on a cyclic graph. *)

val is_valid : 'a Dag.t -> int list -> bool
(** [is_valid g order] checks that [order] is a permutation of the nodes of
    [g] in which every node appears after all of its predecessors. *)

val all : ?limit:int -> 'a Dag.t -> int list list
(** All topological orderings, lexicographically by node id, truncated to at
    most [limit] results (default [256]).  The DPipe DAGs are small (tens of
    nodes) but can still have many orders; the limit keeps enumeration
    tractable while preserving determinism: the lexicographically smallest
    orders are always included. *)

val count_at_most : limit:int -> 'a Dag.t -> int
(** Number of topological orderings, counting stops at [limit]. *)

val longest_path_length : 'a Dag.t -> weight:(int -> float) -> float
(** Critical-path length under a node-weight function (edge weights zero).
    Returns [0.] for the empty graph. *)
