type t = { first : int list; second : int list }

let split_sizes { first; second } = (List.length first, List.length second)

let pp ppf { first; second } =
  Fmt.pf ppf "{%a | %a}" Fmt.(list ~sep:(any " ") int) first Fmt.(list ~sep:(any " ") int) second

let reachable_within g subset seeds =
  let inside = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace inside id ()) subset;
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if Hashtbl.mem inside id && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter visit (Dag.succs g id)
    end
  in
  List.iter visit seeds;
  seen

let is_valid g { first; second } =
  let all_nodes = Dag.nodes g in
  let union = List.sort_uniq compare (first @ second) in
  let disjoint = List.length first + List.length second = List.length union in
  disjoint && union = all_nodes && first <> [] && second <> []
  &&
  let in_first = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_first id ()) first;
  let mem_first id = Hashtbl.mem in_first id in
  (* 1. source-sink alignment *)
  List.for_all mem_first (Dag.sources g)
  && List.for_all (fun id -> not (mem_first id)) (Dag.sinks g)
  (* 2. weak connectivity of both sides *)
  && Dag.weakly_connected g first
  && Dag.weakly_connected g second
  (* 3. dependency completeness of the first side *)
  && List.for_all (fun id -> List.for_all mem_first (Dag.preds g id)) first
  (* 4. reachability of the first side from the DAG sources, within first *)
  &&
  let sources_in_first = List.filter mem_first (Dag.sources g) in
  let seen = reachable_within g first sources_in_first in
  List.for_all (Hashtbl.mem seen) first

let enumerate ?(limit = 512) g =
  let order = Topo.sort g in
  let sinks = Dag.sinks g in
  let is_sink id = List.mem id sinks in
  let results = ref [] and found = ref 0 in
  (* Walk nodes in topological order deciding membership of the first side.
     A node may join the first side only if all its predecessors did, which
     enumerates exactly the predecessor-closed subsets. *)
  let rec go remaining first_rev in_first =
    if !found < limit then
      match remaining with
      | [] ->
          let first = List.rev first_rev in
          let second = List.filter (fun id -> not (Hashtbl.mem in_first id)) (Dag.nodes g) in
          let candidate = { first; second } in
          if is_valid g candidate then begin
            incr found;
            results := candidate :: !results
          end
      | id :: rest ->
          (* Branch 1: id goes to the second side. *)
          go rest first_rev in_first;
          (* Branch 2: id goes to the first side, if permitted. *)
          let closed = List.for_all (Hashtbl.mem in_first) (Dag.preds g id) in
          if closed && not (is_sink id) then begin
            Hashtbl.replace in_first id ();
            go rest (id :: first_rev) in_first;
            Hashtbl.remove in_first id
          end
  in
  go order [] (Hashtbl.create 16);
  List.rev !results
