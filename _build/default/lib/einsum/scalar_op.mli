(** Scalar operations of the Extended-Einsum abstraction.

    Classic Einsums only contract with multiply-accumulate; the extended
    form (paper Section 2.4) lets an Einsum map a user-defined scalar
    function over its operands or reduce with a user-defined monoid.  Each
    operation carries a {e cost factor}: the number of single-cycle PE slots
    one application occupies.  The factors model a 45 nm fixed-function PE
    in the spirit of Accelergy's compound-component tables — LUT-based
    transcendental units cost twice an adder slot. *)

type activation = Relu | Gelu | Silu | Sigmoid

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Max2  (** binary max, used by the running-max update *)
  | Exp
  | Exp_diff  (** [exp (a - b)] — the shifted exponential of the softmax numerator (Eq. 15) and the correction factor PRM (Eq. 18), a single fused unit so Cascade 1 keeps its 12-Einsum shape *)
  | Rsqrt  (** 1 / sqrt x, used by LayerNorm *)
  | Copy
  | Activation of activation

type reduce = Sum | Max_reduce

val cost_factor : t -> float
(** PE slots consumed per scalar application (1.0 for add/mul-class ops). *)

val reduce_cost_factor : reduce -> float
(** PE slots per element folded into a reduction. *)

val apply : t -> float list -> float
(** Reference semantics on floats, used by the numeric validation substrate.
    @raise Invalid_argument on arity mismatch. *)

val reduce_apply : reduce -> float -> float -> float
val reduce_identity : reduce -> float

val to_string : t -> string
val of_string : string -> t option
(** Inverse of {!to_string} (e.g. ["exp_diff"], ["gelu"]). *)

val reduce_to_string : reduce -> string
val reduce_of_string : string -> reduce option
val pp : t Fmt.t
