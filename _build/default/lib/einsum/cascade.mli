(** Cascades of Einsums (paper Section 2.4): an ordered sequence of
    operations in which intermediate tensors feed later operations.

    A cascade induces a computation DAG — node [i] is the [i]-th operation,
    with an edge [i -> j] whenever operation [j] reads the tensor produced
    by operation [i].  Tensors read but never produced are the cascade's
    {e external inputs} (weights, activations from the previous layer,
    recurrent state from the previous outer-tile iteration).  Tensors
    produced but never consumed are its {e results}. *)

type t

val v : ?name:string -> Einsum.t list -> t
(** Build a cascade from operations in program order.
    @raise Invalid_argument when two operations share a name, a tensor is
    produced twice, or an operation reads a tensor produced by a {e later}
    operation (cascades must be in definition order). *)

val name : t -> string
val ops : t -> Einsum.t list
val length : t -> int
val op : t -> int -> Einsum.t
(** Operation at position [i].  @raise Invalid_argument out of range. *)

val find_op : t -> string -> Einsum.t option
(** Look up an operation by name. *)

val to_dag : t -> Einsum.t Tf_dag.Dag.t
(** Dependency DAG; node ids are positions in the cascade. *)

val external_inputs : t -> string list
(** Tensor names read but not produced, sorted. *)

val results : t -> string list
(** Tensor names produced but not consumed, sorted. *)

val produced : t -> string list
(** All produced tensor names, in program order. *)

val indices : t -> Tensor_ref.index list
(** Every index mentioned anywhere in the cascade, sorted. *)

val concat : ?name:string -> t list -> t
(** Sequential composition: later cascades may consume tensors of earlier
    ones.  @raise Invalid_argument on name clashes. *)

val total_compute_load : Extents.t -> t -> float
(** Sum of {!Einsum.compute_load} over the operations. *)

val total_flops : Extents.t -> t -> float

val check_extents : Extents.t -> t -> (unit, string) result
(** [Ok ()] when every index of the cascade is bound in the environment,
    otherwise an error naming the first unbound index. *)

val pp : t Fmt.t
