type kind =
  | Contraction
  | Map of Scalar_op.t
  | Reduce of Scalar_op.reduce

type t = {
  name : string;
  output : Tensor_ref.t;
  inputs : Tensor_ref.t list;
  kind : kind;
}

let output_dims t = t.output.Tensor_ref.indices

let reduction_dims t =
  let out = t.output.Tensor_ref.indices in
  Tensor_ref.indices_of_many t.inputs |> List.filter (fun i -> not (List.mem i out))

let all_dims t =
  List.sort_uniq compare (output_dims t @ reduction_dims t)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let validate op =
  let out = op.output.Tensor_ref.indices in
  let fail msg = invalid_arg (Printf.sprintf "Einsum %s: %s" op.name msg) in
  (match op.kind with
  | Contraction ->
      if List.length op.inputs < 2 then fail "contraction needs at least two inputs";
      let input_indices = Tensor_ref.indices_of_many op.inputs in
      List.iter
        (fun i -> if not (List.mem i input_indices) then fail ("output index " ^ i ^ " missing from inputs"))
        out
  | Reduce _ -> (
      match op.inputs with
      | [ input ] ->
          if not (subset out input.Tensor_ref.indices) then
            fail "reduce output indices must be a subset of the input's";
          if reduction_dims op = [] then fail "reduce has no reduction index"
      | _ -> fail "reduce takes exactly one input")
  | Map scalar ->
      if op.inputs = [] then fail "map needs at least one input";
      List.iter
        (fun (input : Tensor_ref.t) ->
          if not (subset input.Tensor_ref.indices out) then
            fail ("map input " ^ input.tensor ^ " is not broadcastable to the output"))
        op.inputs;
      let arity_needed = List.length op.inputs in
      let expected =
        match scalar with
        | Scalar_op.Add | Sub | Mul | Div | Max2 | Exp_diff -> 2
        | Exp | Rsqrt | Copy | Activation _ -> 1
      in
      if arity_needed <> expected then
        fail
          (Printf.sprintf "map %s expects %d inputs, got %d" (Scalar_op.to_string scalar) expected
             arity_needed));
  op

let v ?name kind ~output ~inputs =
  let name = Option.value name ~default:output.Tensor_ref.tensor in
  validate { name; output; inputs; kind }

let contraction ?name output inputs = v ?name Contraction ~output ~inputs
let map ?name op output inputs = v ?name (Map op) ~output ~inputs
let reduce ?name op output input = v ?name (Reduce op) ~output ~inputs:[ input ]

let cost_factor t =
  match t.kind with
  | Contraction -> 1.0
  | Map op -> Scalar_op.cost_factor op
  | Reduce op -> Scalar_op.reduce_cost_factor op

let flops extents t =
  let out = float_of_int (Extents.product extents (output_dims t)) in
  let red = float_of_int (Extents.product extents (reduction_dims t)) in
  match t.kind with
  | Contraction -> 2. *. out *. red (* multiply + accumulate *)
  | Map _ -> out
  | Reduce _ -> out *. red

let compute_load extents t =
  let out = float_of_int (Extents.product extents (output_dims t)) in
  let red = float_of_int (Extents.product extents (reduction_dims t)) in
  out *. red *. cost_factor t

let is_matrix_op t =
  match t.kind with Contraction -> reduction_dims t <> [] | Map _ | Reduce _ -> false

let input_tensors t = List.map (fun (r : Tensor_ref.t) -> r.tensor) t.inputs
let output_tensor t = t.output.Tensor_ref.tensor

let rename name t = { t with name }

let kind_to_string = function
  | Contraction -> "contract"
  | Map op -> "map:" ^ Scalar_op.to_string op
  | Reduce op -> "reduce:" ^ Scalar_op.reduce_to_string op

let pp ppf t =
  Fmt.pf ppf "%a = %s(%a)" Tensor_ref.pp t.output (kind_to_string t.kind)
    Fmt.(list ~sep:(any ", ") Tensor_ref.pp)
    t.inputs
