(** A single (extended) Einsum operation.

    An operation reads one or more input tensors and writes one output
    tensor.  Its kind determines both its reference semantics and its cost
    shape (paper Section 4.2):

    - [Contraction]: multiply-accumulate over the {e reduction indices} —
      the indices present in at least one input but absent from the output
      (classic Einsum, Eq. 5).
    - [Map op]: apply [op] pointwise over the output index space; inputs
      whose index set is a subset of the output's are broadcast (extended
      Einsum, e.g. Eq. 15's exponentiation).
    - [Reduce op]: fold the single input over its reduction indices with the
      monoid [op] (e.g. Eq. 13's max, Eq. 16's sum).

    Compute load follows Eq. 40: the product of the output-dimension extents
    times the product of the reduction-dimension extents, scaled by the
    scalar cost factor of the operation. *)

type kind =
  | Contraction
  | Map of Scalar_op.t
  | Reduce of Scalar_op.reduce

type t = private {
  name : string;  (** unique within a cascade; conventionally the output tensor name *)
  output : Tensor_ref.t;
  inputs : Tensor_ref.t list;
  kind : kind;
}

val v : ?name:string -> kind -> output:Tensor_ref.t -> inputs:Tensor_ref.t list -> t
(** Construct and validate an operation.  [name] defaults to the output
    tensor name.
    @raise Invalid_argument when the operation is ill-formed: a contraction
    with fewer than two inputs or with output indices missing from every
    input; a reduce with arity other than one or whose output indices are
    not a subset of the input's; a map whose inputs are not broadcastable to
    the output. *)

val contraction : ?name:string -> Tensor_ref.t -> Tensor_ref.t list -> t
val map : ?name:string -> Scalar_op.t -> Tensor_ref.t -> Tensor_ref.t list -> t
val reduce : ?name:string -> Scalar_op.reduce -> Tensor_ref.t -> Tensor_ref.t -> t

val output_dims : t -> Tensor_ref.index list
(** Indices of the output, in output order. *)

val reduction_dims : t -> Tensor_ref.index list
(** Indices appearing in inputs but not the output, sorted. *)

val all_dims : t -> Tensor_ref.index list
(** Union of output and reduction dims, sorted. *)

val compute_load : Extents.t -> t -> float
(** Eq. 40 scaled by the scalar cost factor: equivalent single-cycle PE
    slots needed to execute the operation once. *)

val flops : Extents.t -> t -> float
(** Raw arithmetic operations (unscaled), for reporting. *)

val is_matrix_op : t -> bool
(** True for contractions with at least one reduction index — the
    operations that map natively onto the 2D PE array.  Maps, reduces and
    degenerate contractions are vector/streaming work (1D-native). *)

val cost_factor : t -> float
(** The scalar cost factor of the operation's kind (1.0 for contraction). *)

val input_tensors : t -> string list
val output_tensor : t -> string

val rename : string -> t -> t
(** Replace the operation name (output reference unchanged). *)

val pp : t Fmt.t
(** [Z[m,n] = contract(A[m,k], B[k,n])]-style rendering. *)
