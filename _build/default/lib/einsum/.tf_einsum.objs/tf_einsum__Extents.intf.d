lib/einsum/extents.mli: Fmt Tensor_ref
