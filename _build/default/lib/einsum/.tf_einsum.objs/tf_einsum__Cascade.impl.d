lib/einsum/cascade.ml: Array Einsum Extents Fmt Hashtbl List Printf Tensor_ref Tf_dag
