lib/einsum/cascade.mli: Einsum Extents Fmt Tensor_ref Tf_dag
