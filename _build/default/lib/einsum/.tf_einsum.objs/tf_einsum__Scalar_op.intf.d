lib/einsum/scalar_op.mli: Fmt
