lib/einsum/parser.mli: Cascade Einsum
