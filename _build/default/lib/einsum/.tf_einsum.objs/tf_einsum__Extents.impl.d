lib/einsum/extents.ml: Fmt List Map Printf String Tensor_ref
