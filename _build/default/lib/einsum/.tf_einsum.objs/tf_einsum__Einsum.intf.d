lib/einsum/einsum.mli: Extents Fmt Scalar_op Tensor_ref
