lib/einsum/parser.ml: Buffer Cascade Einsum Fmt List Printf Result Scalar_op String Tensor_ref
