lib/einsum/tensor_ref.mli: Fmt
