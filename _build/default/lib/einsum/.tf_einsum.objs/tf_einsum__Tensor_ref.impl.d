lib/einsum/tensor_ref.ml: Fmt List Printf String
