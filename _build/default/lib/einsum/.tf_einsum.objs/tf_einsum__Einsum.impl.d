lib/einsum/einsum.ml: Extents Fmt List Option Printf Scalar_op Tensor_ref
