lib/einsum/scalar_op.ml: Float Fmt List
