(** References to tensors by name and index list.

    ["BQK"[h;m1;m0;p]] names the tensor [BQK] ranged over indices
    [h, m1, m0, p].  Index names are the rank variables of the Einsum
    notation; their extents live in an {!Extents.t} environment. *)

type index = string

type t = { tensor : string; indices : index list }

val v : string -> index list -> t
(** [v name indices] builds a reference.
    @raise Invalid_argument if [indices] contains duplicates. *)

val scalar : string -> t
(** A rank-0 reference. *)

val rank : t -> int

val mem_index : index -> t -> bool

val indices_of_many : t list -> index list
(** Union of the index sets of several references, sorted, deduplicated. *)

val to_string : t -> string
val pp : t Fmt.t

val equal : t -> t -> bool
