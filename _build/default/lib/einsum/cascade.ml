type t = { name : string; ops : Einsum.t array }

let name t = t.name
let ops t = Array.to_list t.ops
let length t = Array.length t.ops

let op t i =
  if i < 0 || i >= Array.length t.ops then
    invalid_arg (Printf.sprintf "Cascade.op: index %d out of range" i);
  t.ops.(i)

let find_op t op_name = Array.find_opt (fun (o : Einsum.t) -> o.name = op_name) t.ops

let validate name (ops : Einsum.t list) =
  let seen_names = Hashtbl.create 16 and producers = Hashtbl.create 16 in
  List.iteri
    (fun i (o : Einsum.t) ->
      if Hashtbl.mem seen_names o.name then
        invalid_arg (Printf.sprintf "Cascade %s: duplicate op name %s" name o.name);
      Hashtbl.add seen_names o.name ();
      let out = Einsum.output_tensor o in
      if Hashtbl.mem producers out then
        invalid_arg (Printf.sprintf "Cascade %s: tensor %s produced twice" name out);
      Hashtbl.add producers out i)
    ops;
  (* Reads must reference strictly earlier producers (or externals). *)
  List.iteri
    (fun i (o : Einsum.t) ->
      List.iter
        (fun input ->
          match Hashtbl.find_opt producers input with
          | Some j when j >= i ->
              invalid_arg
                (Printf.sprintf "Cascade %s: op %s reads %s before it is produced" name o.name input)
          | _ -> ())
        (Einsum.input_tensors o))
    ops

let v ?(name = "cascade") ops =
  validate name ops;
  { name; ops = Array.of_list ops }

let to_dag t =
  let producers = Hashtbl.create 16 in
  Array.iteri (fun i o -> Hashtbl.replace producers (Einsum.output_tensor o) i) t.ops;
  let g = ref Tf_dag.Dag.empty in
  Array.iteri (fun i o -> g := Tf_dag.Dag.add_node !g i o) t.ops;
  Array.iteri
    (fun j o ->
      List.iter
        (fun input ->
          match Hashtbl.find_opt producers input with
          | Some i when i <> j -> g := Tf_dag.Dag.add_edge !g i j
          | _ -> ())
        (Einsum.input_tensors o))
    t.ops;
  !g

let produced t = Array.to_list t.ops |> List.map Einsum.output_tensor

let external_inputs t =
  let produced_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace produced_set n ()) (produced t);
  Array.to_list t.ops
  |> List.concat_map Einsum.input_tensors
  |> List.filter (fun n -> not (Hashtbl.mem produced_set n))
  |> List.sort_uniq compare

let results t =
  let consumed = Hashtbl.create 16 in
  Array.iter
    (fun o -> List.iter (fun n -> Hashtbl.replace consumed n ()) (Einsum.input_tensors o))
    t.ops;
  produced t |> List.filter (fun n -> not (Hashtbl.mem consumed n)) |> List.sort_uniq compare

let indices t =
  Array.to_list t.ops
  |> List.concat_map (fun (o : Einsum.t) -> Tensor_ref.indices_of_many (o.output :: o.inputs))
  |> List.sort_uniq compare

let concat ?(name = "cascade") cascades =
  v ~name (List.concat_map ops cascades)

let total_compute_load extents t =
  Array.fold_left (fun acc o -> acc +. Einsum.compute_load extents o) 0. t.ops

let total_flops extents t =
  Array.fold_left (fun acc o -> acc +. Einsum.flops extents o) 0. t.ops

let check_extents extents t =
  match List.find_opt (fun i -> not (Extents.mem extents i)) (indices t) with
  | None -> Ok ()
  | Some i -> Error (Printf.sprintf "cascade %s: unbound index %s" t.name i)

let pp ppf t =
  Fmt.pf ppf "cascade %s:@." t.name;
  Array.iter (fun o -> Fmt.pf ppf "  %a@." Einsum.pp o) t.ops
