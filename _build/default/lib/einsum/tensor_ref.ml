type index = string
type t = { tensor : string; indices : index list }

let v tensor indices =
  if List.length (List.sort_uniq compare indices) <> List.length indices then
    invalid_arg (Printf.sprintf "Tensor_ref.v: duplicate index in %s" tensor);
  { tensor; indices }

let scalar tensor = { tensor; indices = [] }
let rank t = List.length t.indices
let mem_index i t = List.mem i t.indices

let indices_of_many refs =
  List.concat_map (fun r -> r.indices) refs |> List.sort_uniq compare

let to_string t =
  match t.indices with
  | [] -> t.tensor
  | indices -> Printf.sprintf "%s[%s]" t.tensor (String.concat "," indices)

let pp ppf t = Fmt.string ppf (to_string t)
let equal a b = a.tensor = b.tensor && a.indices = b.indices
