let ( let* ) = Result.bind

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let strip s = String.trim s

let error fmt = Printf.ksprintf (fun msg -> Error msg) fmt

(* "NAME[a,b,c]" or "NAME" -> tensor reference *)
let parse_ref s =
  let s = strip s in
  if s = "" then error "empty tensor reference"
  else
    match String.index_opt s '[' with
    | None ->
        if String.for_all is_ident_char s then Ok (Tensor_ref.scalar s)
        else error "bad tensor name %S" s
    | Some lb ->
        if not (String.length s > 0 && s.[String.length s - 1] = ']') then
          error "missing ']' in %S" s
        else
          let name = strip (String.sub s 0 lb) in
          let inner = String.sub s (lb + 1) (String.length s - lb - 2) in
          if name = "" || not (String.for_all is_ident_char name) then
            error "bad tensor name %S" name
          else
            let indices = List.map strip (String.split_on_char ',' inner) in
            if List.exists (fun i -> i = "" || not (String.for_all is_ident_char i)) indices then
              error "bad index list in %S" s
            else (
              try Ok (Tensor_ref.v name indices)
              with Invalid_argument msg -> Error msg)

(* Split a comma-separated argument list, respecting brackets. *)
let split_args s =
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' ->
          incr depth;
          Buffer.add_char buf c
      | ']' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map strip !parts

let parse_kind s =
  let s = strip s in
  if s = "contract" then Ok Einsum.Contraction
  else
    match String.index_opt s ':' with
    | None -> error "unknown kind %S (contract | map:<op> | reduce:<sum|max>)" s
    | Some colon -> (
        let head = String.sub s 0 colon in
        let tail = String.sub s (colon + 1) (String.length s - colon - 1) in
        match head with
        | "map" -> (
            match Scalar_op.of_string tail with
            | Some op -> Ok (Einsum.Map op)
            | None -> error "unknown scalar op %S" tail)
        | "reduce" -> (
            match Scalar_op.reduce_of_string tail with
            | Some op -> Ok (Einsum.Reduce op)
            | None -> error "unknown reduction %S (sum | max)" tail)
        | _ -> error "unknown kind %S" head)

let op_of_string line =
  let line = strip line in
  match String.index_opt line '=' with
  | None -> error "missing '=' in %S" line
  | Some eq -> (
      let lhs = String.sub line 0 eq in
      let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
      let* output = parse_ref lhs in
      match String.index_opt rhs '(' with
      | None -> error "missing '(' in %S" rhs
      | Some lp ->
          if not (String.length rhs > 0 && rhs.[String.length rhs - 1] = ')') then
            error "missing ')' in %S" rhs
          else
            let* kind = parse_kind (String.sub rhs 0 lp) in
            let args = String.sub rhs (lp + 1) (String.length rhs - lp - 2) in
            let* inputs =
              List.fold_left
                (fun acc arg ->
                  let* acc = acc in
                  let* r = parse_ref arg in
                  Ok (r :: acc))
                (Ok []) (split_args args)
            in
            let inputs = List.rev inputs in
            (try Ok (Einsum.v kind ~output ~inputs) with Invalid_argument msg -> Error msg))

let header_prefix = "cascade "

let cascade_of_string ?name text =
  let lines = String.split_on_char '\n' text in
  let is_comment l = String.length l > 0 && l.[0] = '#' in
  let parsed_name = ref None in
  let* ops =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let line = strip line in
        if line = "" || is_comment line then Ok acc
        else if
          String.length line > String.length header_prefix
          && String.sub line 0 (String.length header_prefix) = header_prefix
          && line.[String.length line - 1] = ':'
        then begin
          parsed_name :=
            Some
              (strip
                 (String.sub line (String.length header_prefix)
                    (String.length line - String.length header_prefix - 1)));
          Ok acc
        end
        else
          let* op = op_of_string line in
          Ok (op :: acc))
      (Ok []) lines
  in
  let ops = List.rev ops in
  if ops = [] then error "no operations"
  else
    let name =
      match (name, !parsed_name) with
      | Some n, _ -> Some n
      | None, parsed -> parsed
    in
    try Ok (Cascade.v ?name ops) with Invalid_argument msg -> Error msg

let op_to_string op = Fmt.str "%a" Einsum.pp op

let cascade_to_string cascade =
  Fmt.str "cascade %s:\n%s\n" (Cascade.name cascade)
    (String.concat "\n" (List.map op_to_string (Cascade.ops cascade)))
