type activation = Relu | Gelu | Silu | Sigmoid

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Max2
  | Exp
  | Exp_diff
  | Rsqrt
  | Copy
  | Activation of activation

type reduce = Sum | Max_reduce

let cost_factor = function
  | Add | Sub | Mul | Max2 | Copy -> 1.0
  | Div -> 2.0
  | Exp | Exp_diff | Rsqrt -> 2.0
  | Activation Relu -> 1.0
  | Activation (Gelu | Silu | Sigmoid) -> 2.0

let reduce_cost_factor = function Sum | Max_reduce -> 1.0

let gelu x =
  (* tanh approximation, adequate for validation purposes *)
  0.5 *. x *. (1. +. tanh (0.7978845608028654 *. (x +. (0.044715 *. x *. x *. x))))

let sigmoid x = 1. /. (1. +. exp (-.x))

let apply op args =
  match (op, args) with
  | Add, [ a; b ] -> a +. b
  | Sub, [ a; b ] -> a -. b
  | Mul, [ a; b ] -> a *. b
  | Div, [ a; b ] -> a /. b
  | Max2, [ a; b ] -> Float.max a b
  | Exp, [ a ] -> exp a
  | Exp_diff, [ a; b ] -> exp (a -. b)
  | Rsqrt, [ a ] -> 1. /. sqrt a
  | Copy, [ a ] -> a
  | Activation Relu, [ a ] -> Float.max 0. a
  | Activation Gelu, [ a ] -> gelu a
  | Activation Silu, [ a ] -> a *. sigmoid a
  | Activation Sigmoid, [ a ] -> sigmoid a
  | (Add | Sub | Mul | Div | Max2 | Exp | Exp_diff | Rsqrt | Copy | Activation _), _ ->
      invalid_arg "Scalar_op.apply: arity mismatch"

let reduce_apply = function Sum -> ( +. ) | Max_reduce -> Float.max
let reduce_identity = function Sum -> 0. | Max_reduce -> Float.neg_infinity

let activation_to_string = function
  | Relu -> "relu"
  | Gelu -> "gelu"
  | Silu -> "silu"
  | Sigmoid -> "sigmoid"

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Max2 -> "max2"
  | Exp -> "exp"
  | Exp_diff -> "exp_diff"
  | Rsqrt -> "rsqrt"
  | Copy -> "copy"
  | Activation a -> activation_to_string a

let all_ops =
  [ Add; Sub; Mul; Div; Max2; Exp; Exp_diff; Rsqrt; Copy ]
  @ List.map (fun a -> Activation a) [ Relu; Gelu; Silu; Sigmoid ]

let of_string s = List.find_opt (fun op -> to_string op = s) all_ops

let reduce_to_string = function Sum -> "sum" | Max_reduce -> "max"
let reduce_of_string = function "sum" -> Some Sum | "max" -> Some Max_reduce | _ -> None
let pp ppf op = Fmt.string ppf (to_string op)
