module Smap = Map.Make (String)

type t = int Smap.t

let empty = Smap.empty

let add index extent t =
  if extent < 1 then invalid_arg (Printf.sprintf "Extents.add: extent %d for %s" extent index);
  Smap.add index extent t

let of_list l =
  List.fold_left
    (fun t (index, extent) ->
      if Smap.mem index t then invalid_arg (Printf.sprintf "Extents.of_list: duplicate %s" index);
      add index extent t)
    empty l

let find t index = Smap.find index t
let find_opt t index = Smap.find_opt index t
let mem t index = Smap.mem index t
let bindings t = Smap.bindings t

let product t indices =
  List.fold_left (fun acc index -> acc * find t index) 1 indices

let volume t (r : Tensor_ref.t) = product t r.indices

let pp ppf t =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string int))
    (bindings t)
