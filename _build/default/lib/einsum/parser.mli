(** Textual notation for Einsum operations and cascades.

    The concrete syntax is exactly what {!Einsum.pp} and {!Cascade.pp}
    print, one operation per line:

    {v
    BQK[h,m0,p] = contract(Q[h,e,p], BK[h,e,m0])
    LM[h,p] = reduce:max(BQK[h,m0,p])
    SLN[h,m0,p] = map:exp_diff(BQK[h,m0,p], RM[h,p])
    G = reduce:max(I[m])
    v}

    - the output reference precedes ['='];
    - the kind is [contract], [map:<scalar-op>] or [reduce:<sum|max>];
    - a rank-0 tensor omits its bracket;
    - blank lines and [#]-comments are ignored;
    - an optional leading ["cascade <name>:"] line names the cascade.

    This is the paper's [einsum(InputIndices -> OutputIndices)] notation
    (Section 4.2) extended with the operation kind, and gives the CLI and
    tests a round-trippable external form. *)

val op_of_string : string -> (Einsum.t, string) result
(** Parse one operation line. *)

val cascade_of_string : ?name:string -> string -> (Cascade.t, string) result
(** Parse a whole cascade (multi-line).  [name] overrides any
    ["cascade <name>:"] header. *)

val op_to_string : Einsum.t -> string
(** Render an operation in the parseable syntax (same as {!Einsum.pp}). *)

val cascade_to_string : Cascade.t -> string
(** Render a cascade; {!cascade_of_string} inverts it. *)
