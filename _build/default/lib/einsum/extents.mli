(** Extent environments: the concrete size bound to each Einsum index.

    A cascade is shape-polymorphic; binding it to a workload (model dims,
    sequence length, tile factors) happens through one of these
    environments. *)

type t

val empty : t

val of_list : (Tensor_ref.index * int) list -> t
(** @raise Invalid_argument on a duplicate binding or non-positive extent. *)

val add : Tensor_ref.index -> int -> t -> t
(** Adds or replaces a binding.  @raise Invalid_argument on extent < 1. *)

val find : t -> Tensor_ref.index -> int
(** @raise Not_found when the index is unbound. *)

val find_opt : t -> Tensor_ref.index -> int option

val mem : t -> Tensor_ref.index -> bool

val bindings : t -> (Tensor_ref.index * int) list
(** Sorted by index name. *)

val product : t -> Tensor_ref.index list -> int
(** Product of the extents of the given indices (1 for the empty list).
    @raise Not_found when any index is unbound. *)

val volume : t -> Tensor_ref.t -> int
(** Number of elements of a tensor reference under this environment. *)

val pp : t Fmt.t
