(* Tests for the generic MCTS used by TileSeek: determinism, convergence
   on known landscapes, and bookkeeping. *)

module Mcts = Transfusion.Mcts

(* A two-level landscape: choose a in 0..4, then b in 0..4; reward peaks
   uniquely at (3, 1). *)
let two_level =
  {
    Mcts.actions =
      (fun path -> match List.length path with 0 | 1 -> [ 0; 1; 2; 3; 4 ] | _ -> []);
    reward =
      (fun path ->
        match path with
        | [ a; b ] -> 1. /. (1. +. float_of_int (abs (a - 3) + abs (b - 1)))
        | _ -> 0.);
  }

let test_finds_optimum () =
  let rng = Random.State.make [| 0 |] in
  let best, stats = Mcts.search ~rng ~iterations:300 two_level in
  (match best with
  | Some (path, reward) ->
      Alcotest.(check (list int)) "optimal path" [ 3; 1 ] path;
      Alcotest.(check (float 1e-12)) "optimal reward" 1. reward
  | None -> Alcotest.fail "no terminal found");
  Alcotest.(check int) "iterations recorded" 300 stats.Mcts.iterations;
  Alcotest.(check bool) "terminals evaluated" true (stats.Mcts.terminals_evaluated > 0);
  Alcotest.(check (float 1e-12)) "best reward recorded" 1. stats.Mcts.best_reward

let test_deterministic () =
  let run seed =
    let rng = Random.State.make [| seed |] in
    fst (Mcts.search ~rng ~iterations:50 two_level)
  in
  Alcotest.(check bool) "same seed, same result" true (run 7 = run 7)

let test_single_level () =
  let problem =
    {
      Mcts.actions = (fun path -> if path = [] then [ 10; 20; 30 ] else []);
      reward = (fun path -> match path with [ x ] -> float_of_int x | _ -> 0.);
    }
  in
  let rng = Random.State.make [| 1 |] in
  let best, _ = Mcts.search ~rng ~iterations:20 problem in
  match best with
  | Some (path, reward) ->
      Alcotest.(check (list int)) "picks max" [ 30 ] path;
      Alcotest.(check (float 0.)) "reward" 30. reward
  | None -> Alcotest.fail "no terminal"

let test_tree_growth () =
  let rng = Random.State.make [| 3 |] in
  let _, stats = Mcts.search ~rng ~iterations:100 two_level in
  (* Root + at most one expansion per iteration. *)
  Alcotest.(check bool) "tree bounded by iterations" true (stats.Mcts.tree_nodes <= 101);
  Alcotest.(check bool) "tree grew" true (stats.Mcts.tree_nodes > 5)

let test_deep_landscape () =
  (* Four binary decisions; reward counts ones: optimum [1;1;1;1]. *)
  let problem =
    {
      Mcts.actions = (fun path -> if List.length path < 4 then [ 0; 1 ] else []);
      reward = (fun path -> float_of_int (List.fold_left ( + ) 0 path));
    }
  in
  let rng = Random.State.make [| 9 |] in
  let best, _ = Mcts.search ~rng ~iterations:200 problem in
  match best with
  | Some (path, reward) ->
      Alcotest.(check (list int)) "all ones" [ 1; 1; 1; 1 ] path;
      Alcotest.(check (float 0.)) "reward 4" 4. reward
  | None -> Alcotest.fail "no terminal"

let prop_best_is_max_seen =
  QCheck.Test.make ~name:"reported best reward is the max over evaluations" ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let seen = ref [] in
      let problem =
        {
          Mcts.actions = (fun path -> if List.length path < 2 then [ 0; 1; 2 ] else []);
          reward =
            (fun path ->
              let r = float_of_int (Hashtbl.hash (seed :: path) mod 1000) in
              seen := r :: !seen;
              r);
        }
      in
      let rng = Random.State.make [| seed |] in
      let best, stats = Mcts.search ~rng ~iterations:40 problem in
      match best with
      | Some (_, reward) ->
          reward = stats.Mcts.best_reward && List.for_all (fun r -> r <= reward) !seen
      | None -> false)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_mcts"
    [
      ( "mcts",
        [
          quick "finds the optimum" test_finds_optimum;
          quick "deterministic per seed" test_deterministic;
          quick "single-level" test_single_level;
          quick "tree growth bounded" test_tree_growth;
          quick "deeper landscape" test_deep_landscape;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_best_is_max_seen ]);
    ]
