(* Tests for the cost-model substrate: traffic records, phases, the
   latency composition rule and the Accelergy-style energy breakdown. *)

open Tf_costmodel
open Tf_arch

let arch =
  Arch.v ~name:"toy" ~clock_hz:1e9 ~element_bytes:2 ~vector_eff_2d:0.5 ~matrix_eff_1d:0.5
    ~pe_2d:(Pe_array.two_d 10 10) ~pe_1d:(Pe_array.one_d 10) ~buffer_bytes:(1024 * 1024)
    ~dram_bw_bytes_per_s:1e9 ()

let traffic ?(dram_reads = 0.) ?(dram_writes = 0.) ?(buffer = 0.) ?(rf = 0.) ?(macs = 0.)
    ?(vector_ops = 0.) () =
  {
    Traffic.dram_reads;
    dram_writes;
    buffer_reads = buffer;
    buffer_writes = buffer;
    regfile_accesses = rf;
    macs;
    vector_ops;
  }

(* Traffic -------------------------------------------------------------- *)

let test_traffic_algebra () =
  let a = traffic ~dram_reads:10. ~macs:100. () in
  let b = traffic ~dram_writes:5. ~vector_ops:50. () in
  let s = Traffic.add a b in
  Alcotest.(check (float 0.)) "reads" 10. s.Traffic.dram_reads;
  Alcotest.(check (float 0.)) "writes" 5. s.Traffic.dram_writes;
  Alcotest.(check (float 0.)) "dram elements" 15. (Traffic.dram_elements s);
  Alcotest.(check (float 0.)) "dram bytes" 30. (Traffic.dram_bytes ~element_bytes:2 s);
  Alcotest.(check (float 0.)) "compute" 150. (Traffic.compute_ops s);
  let doubled = Traffic.scale 2. a in
  Alcotest.(check (float 0.)) "scale" 20. doubled.Traffic.dram_reads;
  Alcotest.(check (float 0.)) "sum" 15. (Traffic.dram_elements (Traffic.sum [ a; b ]));
  Alcotest.(check (float 0.)) "zero" 0. (Traffic.dram_elements Traffic.zero)

(* Phase ----------------------------------------------------------------- *)

let test_sequential_execution () =
  (* 1000 matrix slots on a 100-PE 2D array (peak) then 500 vector slots
     on a 10-PE 1D array: 10 + 50 cycles, no overlap. *)
  let e = Phase.sequential_execution arch ~matrix_load:1000. ~vector_load:500. in
  Alcotest.(check (float 1e-9)) "makespan" 60. e.Phase.makespan_cycles;
  Alcotest.(check (float 0.)) "useful 2d" 1000. e.Phase.useful_2d_slots;
  Alcotest.(check (float 0.)) "useful 1d" 500. e.Phase.useful_1d_slots

let test_phase_scale () =
  let e = Phase.sequential_execution arch ~matrix_load:100. ~vector_load:0. in
  let p = Phase.v ~name:"x" ~kind:Phase.Qkv ~traffic:(traffic ~dram_reads:10. ()) ~execution:e () in
  let p2 = Phase.scale 3. p in
  Alcotest.(check (float 1e-9)) "traffic scaled" 30. p2.Phase.traffic.Traffic.dram_reads;
  Alcotest.(check (float 1e-9)) "makespan scaled" (3. *. e.Phase.makespan_cycles)
    p2.Phase.execution.Phase.makespan_cycles

(* Latency ---------------------------------------------------------------- *)

let phase ~name ~cycles ~dram ?(useful_2d = 0.) ?(useful_1d = 0.) ?(kind = Phase.Qkv) ?parts () =
  Phase.v ?parts ~name ~kind
    ~traffic:(traffic ~dram_reads:dram ())
    ~execution:{ Phase.makespan_cycles = cycles; useful_2d_slots = useful_2d; useful_1d_slots = useful_1d }
    ()

let test_latency_bounds () =
  (* compute: 1000 cycles = 1us; memory: 1e6 elements * 2B / 1GB/s = 2ms. *)
  let memory_bound = phase ~name:"mb" ~cycles:1000. ~dram:1e6 () in
  let compute_bound = phase ~name:"cb" ~cycles:1e7 ~dram:10. () in
  let result = Latency.evaluate arch [ memory_bound; compute_bound ] in
  (match result.Latency.phases with
  | [ a; b ] ->
      Alcotest.(check bool) "first memory bound" true (a.Latency.bound = `Memory);
      Alcotest.(check (float 1e-12)) "memory time" 2e-3 a.Latency.total_s;
      Alcotest.(check bool) "second compute bound" true (b.Latency.bound = `Compute);
      Alcotest.(check (float 1e-12)) "compute time" 1e-2 b.Latency.total_s
  | _ -> Alcotest.fail "expected two phases");
  Alcotest.(check (float 1e-12)) "phases sum" 1.2e-2 result.Latency.total_s

let test_latency_utilization () =
  (* One phase, 100 cycles, 2D busy with 5000 useful slots out of a
     100-PE * 100-cycle = 10000 capacity -> 50%. *)
  let p = phase ~name:"u" ~cycles:100. ~dram:0. ~useful_2d:5000. ~useful_1d:200. () in
  let result = Latency.evaluate arch [ p ] in
  Alcotest.(check (float 1e-9)) "2d util" 0.5 result.Latency.util_2d;
  Alcotest.(check (float 1e-9)) "1d util" 0.2 result.Latency.util_1d

let test_latency_empty () =
  Alcotest.check_raises "no phases" (Invalid_argument "Latency.evaluate: no phases") (fun () ->
      ignore (Latency.evaluate arch []))

let test_per_kind_attribution () =
  let p1 = phase ~name:"qkv" ~cycles:1000. ~dram:0. ~kind:Phase.Qkv () in
  let p2 =
    phase ~name:"fused" ~cycles:3000. ~dram:0. ~kind:Phase.Fused_stack
      ~parts:[ (Phase.Mha, 0.5); (Phase.Ffn, 0.5) ]
      ()
  in
  let result = Latency.evaluate arch [ p1; p2 ] in
  let seconds = Latency.per_kind_seconds result in
  let get kind = List.assoc kind seconds in
  Alcotest.(check (float 1e-12)) "qkv" 1e-6 (get Phase.Qkv);
  Alcotest.(check (float 1e-12)) "mha from parts" 1.5e-6 (get Phase.Mha);
  Alcotest.(check (float 1e-12)) "ffn from parts" 1.5e-6 (get Phase.Ffn);
  Alcotest.(check (float 1e-12)) "layernorm zero" 0. (get Phase.Layernorm)

(* Energy ----------------------------------------------------------------- *)

let test_energy_breakdown () =
  let e = arch.Arch.energy in
  let t =
    {
      Traffic.dram_reads = 100.;
      dram_writes = 50.;
      buffer_reads = 1000.;
      buffer_writes = 500.;
      regfile_accesses = 10000.;
      macs = 100000.;
      vector_ops = 20000.;
    }
  in
  let b = Energy.of_traffic arch t in
  Alcotest.(check (float 1e-6)) "dram" (150. *. e.Energy_table.dram_access_pj) b.Energy.dram_pj;
  Alcotest.(check (float 1e-6)) "buffer" (1500. *. e.Energy_table.buffer_access_pj) b.Energy.buffer_pj;
  Alcotest.(check (float 1e-6)) "rf" (10000. *. e.Energy_table.regfile_access_pj) b.Energy.regfile_pj;
  Alcotest.(check (float 1e-6)) "compute"
    ((100000. *. e.Energy_table.mac_pj) +. (20000. *. e.Energy_table.vector_op_pj))
    b.Energy.compute_pj;
  Alcotest.(check (float 1e-6)) "total" (b.Energy.dram_pj +. b.Energy.buffer_pj +. b.Energy.regfile_pj +. b.Energy.compute_pj)
    (Energy.total_pj b)

let test_energy_fractions () =
  let b = { Energy.dram_pj = 50.; buffer_pj = 30.; regfile_pj = 15.; compute_pj = 5. } in
  let fractions = Energy.fractions b in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. fractions in
  Alcotest.(check (float 1e-12)) "fractions sum to 1" 1. total;
  Alcotest.(check (float 1e-12)) "dram share" 0.5 (List.assoc "DRAM" fractions);
  Alcotest.(check (list string)) "component order" [ "DRAM"; "GlobalBuffer"; "RegisterFile"; "PE" ]
    (List.map fst fractions)

let test_energy_algebra () =
  let b = { Energy.dram_pj = 1.; buffer_pj = 2.; regfile_pj = 3.; compute_pj = 4. } in
  Alcotest.(check (float 0.)) "zero total" 0. (Energy.total_pj Energy.zero);
  Alcotest.(check (float 0.)) "add" 20. (Energy.total_pj (Energy.add b b))

(* Roofline ---------------------------------------------------------------- *)

let test_roofline_balance () =
  (* toy arch: 110 PEs at 1 GHz over 1 GB/s = 110 slots per byte. *)
  Alcotest.(check (float 1e-9)) "machine balance" 110. (Roofline.machine_balance arch)

let test_roofline_phase () =
  let memory_bound =
    Phase.v ~name:"mb" ~kind:Phase.Qkv
      ~traffic:(traffic ~dram_reads:1e6 ~macs:1e6 ())
      ~execution:{ Phase.makespan_cycles = 1.; useful_2d_slots = 0.; useful_1d_slots = 0. }
      ()
  in
  let a = Roofline.of_phase arch memory_bound in
  (* 1e6 slots over 2e6 bytes = 0.5 slots/B << 110. *)
  Alcotest.(check (float 1e-9)) "intensity" 0.5 a.Roofline.intensity;
  Alcotest.(check bool) "memory bound" true (a.Roofline.bound = `Memory);
  Alcotest.(check bool) "attainable fraction" true
    (Float.abs (a.Roofline.attainable_fraction -. (0.5 /. 110.)) < 1e-9);
  let compute_bound =
    Phase.v ~name:"cb" ~kind:Phase.Ffn
      ~traffic:(traffic ~dram_reads:1. ~macs:1e9 ())
      ~execution:{ Phase.makespan_cycles = 1.; useful_2d_slots = 0.; useful_1d_slots = 0. }
      ()
  in
  Alcotest.(check bool) "compute bound" true
    ((Roofline.of_phase arch compute_bound).Roofline.bound = `Compute);
  let no_traffic =
    Phase.v ~name:"nt" ~kind:Phase.Mha ~traffic:(traffic ~macs:10. ())
      ~execution:{ Phase.makespan_cycles = 1.; useful_2d_slots = 0.; useful_1d_slots = 0. }
      ()
  in
  Alcotest.(check bool) "zero traffic is compute bound" true
    ((Roofline.of_phase arch no_traffic).Roofline.bound = `Compute)

let test_roofline_einsum () =
  let open Tf_einsum in
  let matmul =
    Einsum.contraction (Tensor_ref.v "Z" [ "m"; "n" ])
      [ Tensor_ref.v "A" [ "m"; "k" ]; Tensor_ref.v "B" [ "k"; "n" ] ]
  in
  (* Large square matmul: intensity grows with size -> compute bound. *)
  let big = Extents.of_list [ ("m", 1024); ("k", 1024); ("n", 1024) ] in
  Alcotest.(check bool) "big matmul compute bound" true
    ((Roofline.of_einsum arch big matmul).Roofline.bound = `Compute);
  (* Tiny matmul: memory bound even at compulsory traffic. *)
  let small = Extents.of_list [ ("m", 4); ("k", 4); ("n", 4) ] in
  Alcotest.(check bool) "small matmul memory bound" true
    ((Roofline.of_einsum arch small matmul).Roofline.bound = `Memory)

let prop_latency_monotone =
  QCheck.Test.make ~name:"phase latency is monotone in compute cycles" ~count:100
    QCheck.(pair (float_range 1. 1e6) (float_range 1. 1e6))
    (fun (c1, c2) ->
      let lo = Float.min c1 c2 and hi = Float.max c1 c2 in
      let eval c = (Latency.evaluate arch [ phase ~name:"m" ~cycles:c ~dram:100. () ]).Latency.total_s in
      eval lo <= eval hi +. 1e-15)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_costmodel"
    [
      ("traffic", [ quick "algebra" test_traffic_algebra ]);
      ( "phase",
        [ quick "sequential execution" test_sequential_execution; quick "scaling" test_phase_scale ] );
      ( "latency",
        [
          quick "compute vs memory bound" test_latency_bounds;
          quick "utilization" test_latency_utilization;
          quick "empty rejected" test_latency_empty;
          quick "per-kind attribution" test_per_kind_attribution;
        ] );
      ( "energy",
        [
          quick "breakdown" test_energy_breakdown;
          quick "fractions" test_energy_fractions;
          quick "algebra" test_energy_algebra;
        ] );
      ( "roofline",
        [
          quick "machine balance" test_roofline_balance;
          quick "phase classification" test_roofline_phase;
          quick "einsum classification" test_roofline_einsum;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_latency_monotone ]);
    ]
