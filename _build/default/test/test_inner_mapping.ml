(* Tests for the Table 1 intra-layer dimension mapping. *)

module Im = Transfusion.Inner_mapping
open Tf_einsum

let extents =
  Extents.of_list [ ("p", 512); ("m0", 128); ("h", 8); ("e", 64); ("f", 64); ("s", 2048) ]

let cloud = Tf_arch.Presets.cloud
let edge = Tf_arch.Presets.edge

let test_table1 () =
  let check kind rows cols =
    let a = Im.table1 kind in
    Alcotest.(check (list string)) (Im.module_kind_to_string kind ^ " rows") rows a.Im.rows;
    Alcotest.(check (list string)) (Im.module_kind_to_string kind ^ " cols") cols a.Im.cols
  in
  check Im.Qkv_q [ "p" ] [ "h"; "e" ];
  check Im.Qkv_kv [ "m0" ] [ "h"; "e" ];
  check Im.Mha [ "p" ] [ "m0" ];
  check Im.Layernorm [ "p" ] [ "h"; "f" ];
  check Im.Ffn [ "p" ] [ "s" ]

let test_extents_products () =
  let t = Im.inner_tile cloud extents Im.Qkv_q in
  Alcotest.(check int) "row extent p" 512 t.Im.row_extent;
  Alcotest.(check int) "col extent h*e" 512 t.Im.col_extent

let test_clipping_cloud () =
  (* Cloud 256x256 array: 512 rows -> 2 row passes; 512 cols -> 2 col
     passes. *)
  let t = Im.inner_tile cloud extents Im.Qkv_q in
  Alcotest.(check int) "tile rows clipped" 256 t.Im.tile_rows;
  Alcotest.(check int) "tile cols clipped" 256 t.Im.tile_cols;
  Alcotest.(check int) "row passes" 2 t.Im.row_passes;
  Alcotest.(check int) "col passes" 2 t.Im.col_passes;
  Alcotest.(check (float 1e-9)) "full utilization" 1. t.Im.utilization

let test_clipping_edge () =
  (* Edge 16x16 array: the FFN tile is 16x16 of a 512x2048 space. *)
  let t = Im.inner_tile edge extents Im.Ffn in
  Alcotest.(check int) "rows" 16 t.Im.tile_rows;
  Alcotest.(check int) "row passes" 32 t.Im.row_passes;
  Alcotest.(check int) "col passes" 128 t.Im.col_passes;
  Alcotest.(check int) "total passes" (32 * 128) (Im.passes t)

let test_head_packing () =
  (* MHA tile is p x m0 = 256 x 128 on cloud: two head tiles fit in the
     256 columns. *)
  let t = Im.inner_tile cloud extents Im.Mha in
  Alcotest.(check int) "heads packed" 2 t.Im.heads_packed;
  Alcotest.(check (float 1e-9)) "array filled by packing" 1. t.Im.utilization;
  (* Packing is bounded by the head count. *)
  let few_heads = Extents.add "h" 1 extents in
  let t1 = Im.inner_tile cloud few_heads Im.Mha in
  Alcotest.(check int) "bounded by heads" 1 t1.Im.heads_packed;
  (* Non-MHA modules never pack. *)
  let t2 = Im.inner_tile cloud extents Im.Layernorm in
  Alcotest.(check int) "layernorm unpacked" 1 t2.Im.heads_packed

let test_small_tile_utilization () =
  (* A 4-token tile on the cloud array uses 4/256 of the rows. *)
  let small = Extents.add "p" 4 (Extents.of_list [ ("h", 2); ("f", 8) ]) in
  let t = Im.inner_tile cloud small Im.Layernorm in
  Alcotest.(check (float 1e-9)) "underutilized" (4. *. 16. /. 65536.) t.Im.utilization;
  Alcotest.(check int) "single pass" 1 (Im.passes t)

let prop_utilization_bounds =
  QCheck.Test.make ~name:"utilization in (0, 1]; passes >= 1" ~count:100
    QCheck.(
      quad (int_range 1 2048) (int_range 1 512) (int_range 1 16) (int_range 1 128))
    (fun (p, m0, h, e) ->
      let extents =
        Extents.of_list [ ("p", p); ("m0", m0); ("h", h); ("e", e); ("f", e); ("s", 64) ]
      in
      List.for_all
        (fun kind ->
          let t = Im.inner_tile edge extents kind in
          t.Im.utilization > 0. && t.Im.utilization <= 1. && Im.passes t >= 1)
        [ Im.Qkv_q; Im.Qkv_kv; Im.Mha; Im.Layernorm; Im.Ffn ])

let prop_passes_cover_space =
  QCheck.Test.make ~name:"passes cover the full index space" ~count:100
    QCheck.(pair (int_range 1 4096) (int_range 1 4096))
    (fun (p, s) ->
      let extents =
        Extents.of_list [ ("p", p); ("m0", 1); ("h", 1); ("e", 1); ("f", 1); ("s", s) ]
      in
      let t = Im.inner_tile edge extents Im.Ffn in
      t.Im.row_passes * t.Im.tile_rows >= t.Im.row_extent
      && t.Im.col_passes * t.Im.tile_cols >= t.Im.col_extent)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_inner_mapping"
    [
      ( "table1",
        [
          quick "index assignments" test_table1;
          quick "extent products" test_extents_products;
          quick "clipping (cloud)" test_clipping_cloud;
          quick "clipping (edge)" test_clipping_edge;
          quick "head packing" test_head_packing;
          quick "small-tile utilization" test_small_tile_utilization;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_utilization_bounds; prop_passes_cover_space ] );
    ]
