(* Tests for the discrete-event replay of DPipe schedules: the simulated
   makespan must reproduce the analytic one, busy time must match the
   assigned loads, and corrupted schedules must deadlock. *)

module Dpipe = Transfusion.Dpipe
module Sim = Transfusion.Pipeline_sim
module Dag = Tf_dag.Dag
open Tf_arch

let arch =
  Arch.v ~name:"sim" ~vector_eff_2d:0.5 ~matrix_eff_1d:0.5 ~pe_2d:(Pe_array.two_d 8 8)
    ~pe_1d:(Pe_array.one_d 8) ~buffer_bytes:(1 lsl 20) ~dram_bw_bytes_per_s:1e9 ()

let chain =
  Dag.of_edges [ (0, "a"); (1, "b"); (2, "c") ] [ (0, 1); (1, 2) ]

let load = function 0 -> 640. | 1 -> 80. | _ -> 320.
let matrix = function 0 | 2 -> true | _ -> false

let test_replay_matches_dp () =
  let sched = Dpipe.schedule arch ~load ~matrix chain in
  match Sim.replay arch ~load ~matrix chain sched with
  | Ok outcome ->
      Alcotest.(check bool) "makespans agree" true (Sim.agrees sched outcome);
      Alcotest.(check int) "all instances" (3 * sched.Dpipe.epochs_unrolled) outcome.Sim.instances
  | Error e -> Alcotest.failf "replay failed: %s" e

let test_busy_accounting () =
  let sched = Dpipe.schedule arch ~load ~matrix chain in
  match Sim.replay arch ~load ~matrix chain sched with
  | Ok outcome ->
      (* Busy time of each array equals the sum of its instances'
         latencies; both are bounded by the makespan. *)
      Alcotest.(check bool) "2d busy <= makespan" true
        (outcome.Sim.busy_2d_cycles <= outcome.Sim.makespan_cycles +. 1e-9);
      Alcotest.(check bool) "1d busy <= makespan" true
        (outcome.Sim.busy_1d_cycles <= outcome.Sim.makespan_cycles +. 1e-9);
      Alcotest.(check bool) "some work happened" true
        (outcome.Sim.busy_2d_cycles +. outcome.Sim.busy_1d_cycles > 0.)
  | Error e -> Alcotest.failf "replay failed: %s" e

let test_deadlock_detection () =
  let sched = Dpipe.schedule arch ~load ~matrix chain in
  (* Corrupt the schedule: force producer and consumer onto one resource
     with the consumer issued first. *)
  let corrupted =
    {
      sched with
      Dpipe.assignments =
        List.map
          (fun (a : Dpipe.assignment) ->
            let start_cycle =
              (* invert issue order within each epoch *)
              1e9 -. a.Dpipe.start_cycle
            in
            { a with Dpipe.resource = Arch.Pe_2d; start_cycle })
          sched.Dpipe.assignments;
    }
  in
  match Sim.replay arch ~load ~matrix chain corrupted with
  | Ok _ -> Alcotest.fail "expected deadlock"
  | Error _ -> ()

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_gantt () =
  let sched = Dpipe.schedule arch ~load ~matrix chain in
  let text = Sim.gantt ~width:40 ~label:(fun n -> Printf.sprintf "op%d" n) sched in
  Alcotest.(check bool) "mentions both lanes" true
    (contains text "2D array:" && contains text "1D array:");
  Alcotest.(check bool) "draws spans" true (contains text "#")

let prop_replay_agrees =
  QCheck.Test.make ~name:"replay reproduces the DP makespan on random DAGs" ~count:60
    QCheck.(pair (int_range 1 7) (int_range 0 10000))
    (fun (n, seed) ->
      let state = Random.State.make [| seed |] in
      let edges =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j -> if j > i && Random.State.bool state then Some (i, j) else None)
              (List.init n Fun.id))
          (List.init n Fun.id)
      in
      let g = Dag.of_edges (List.init n (fun i -> (i, i))) edges in
      let load i = 16. +. float_of_int ((i * 97) mod 512) in
      let matrix i = i mod 2 = 0 in
      let sched = Dpipe.schedule arch ~load ~matrix g in
      match Sim.replay arch ~load ~matrix g sched with
      | Ok outcome -> Sim.agrees sched outcome
      | Error _ -> false)

let prop_static_replay_agrees =
  QCheck.Test.make ~name:"replay agrees for static schedules too" ~count:40
    QCheck.(int_range 2 7)
    (fun n ->
      let g =
        Dag.of_edges (List.init n (fun i -> (i, i))) (List.init (n - 1) (fun i -> (i, i + 1)))
      in
      let load i = 100. +. float_of_int (i * 31) in
      let matrix i = i mod 2 = 0 in
      let assign i = if matrix i then Arch.Pe_2d else Arch.Pe_1d in
      let sched = Dpipe.schedule ~mode:(`Static assign) arch ~load ~matrix g in
      match Sim.replay arch ~load ~matrix g sched with
      | Ok outcome -> Sim.agrees sched outcome
      | Error _ -> false)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_pipeline_sim"
    [
      ( "replay",
        [
          quick "matches the DP" test_replay_matches_dp;
          quick "busy accounting" test_busy_accounting;
          quick "deadlock detection" test_deadlock_detection;
          quick "gantt rendering" test_gantt;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_replay_agrees; prop_static_replay_agrees ] );
    ]
