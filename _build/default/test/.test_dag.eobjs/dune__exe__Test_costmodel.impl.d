test/test_costmodel.ml: Alcotest Arch Einsum Energy Energy_table Extents Float Latency List Pe_array Phase QCheck QCheck_alcotest Roofline Tensor_ref Tf_arch Tf_costmodel Tf_einsum Traffic
