test/test_mcts.mli:
