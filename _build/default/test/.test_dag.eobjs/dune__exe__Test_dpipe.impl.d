test/test_dpipe.ml: Alcotest Arch Array Fun List Pe_array QCheck QCheck_alcotest Random Tf_arch Tf_dag Transfusion
