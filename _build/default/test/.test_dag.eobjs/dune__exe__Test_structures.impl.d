test/test_structures.ml: Alcotest List Model Tf_arch Tf_costmodel Tf_workloads Transfusion Workload
