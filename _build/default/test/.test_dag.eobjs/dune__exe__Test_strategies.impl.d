test/test_strategies.ml: Alcotest Arch Float Hashtbl List Model Printf Tf_arch Tf_costmodel Tf_workloads Transfusion Workload
