test/test_strategies.mli:
