test/test_experiments.ml: Alcotest List Presets Printf Tf_arch Tf_experiments Tf_workloads Transfusion Workload
