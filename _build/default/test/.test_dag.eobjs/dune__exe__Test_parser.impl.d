test/test_parser.ml: Alcotest Cascade Einsum Extents Fmt List Parser Printf QCheck QCheck_alcotest Random Result Scalar_op Tensor_ref Tf_einsum Tf_tensor Transfusion
