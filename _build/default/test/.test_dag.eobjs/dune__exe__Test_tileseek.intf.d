test/test_tileseek.mli:
