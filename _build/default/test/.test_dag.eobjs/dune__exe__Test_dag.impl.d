test/test_dag.ml: Alcotest Fmt Fun Hashtbl List QCheck QCheck_alcotest String Tf_dag
