test/test_einsum.mli:
