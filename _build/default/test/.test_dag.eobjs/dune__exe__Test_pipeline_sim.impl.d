test/test_pipeline_sim.ml: Alcotest Arch Fun List Pe_array Printf QCheck QCheck_alcotest Random String Tf_arch Tf_dag Transfusion
