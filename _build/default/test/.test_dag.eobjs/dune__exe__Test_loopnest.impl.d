test/test_loopnest.ml: Alcotest Einsum Extents List QCheck QCheck_alcotest Tensor_ref Tf_arch Tf_costmodel Tf_einsum
