test/test_buffer_req.ml: Alcotest Arch Einsum Extents List Pe_array QCheck QCheck_alcotest Scalar_op Tensor_ref Tf_arch Tf_einsum Tf_workloads Transfusion
