test/test_layer_costs.mli:
