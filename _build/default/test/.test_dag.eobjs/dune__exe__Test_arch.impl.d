test/test_arch.ml: Accelergy Alcotest Arch Energy_table Float List Pe_array Presets QCheck QCheck_alcotest Tf_arch
