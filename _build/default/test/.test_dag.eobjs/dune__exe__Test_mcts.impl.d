test/test_mcts.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Random Transfusion
