test/test_tensor.ml: Alcotest Array Cascade Einsum Extents Float List Printf QCheck QCheck_alcotest Random Scalar_op Tensor_ref Tf_einsum Tf_tensor
