test/test_dpipe.mli:
