test/test_layer_costs.ml: Alcotest Float List Model Printf QCheck QCheck_alcotest Tf_einsum Tf_workloads Transfusion Workload
