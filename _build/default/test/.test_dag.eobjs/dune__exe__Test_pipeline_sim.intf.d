test/test_pipeline_sim.mli:
