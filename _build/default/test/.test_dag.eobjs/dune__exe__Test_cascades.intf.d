test/test_cascades.mli:
