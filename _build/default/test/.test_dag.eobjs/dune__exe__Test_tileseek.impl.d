test/test_tileseek.ml: Alcotest Arch List Printf QCheck QCheck_alcotest Tf_arch Tf_workloads Transfusion Workload
