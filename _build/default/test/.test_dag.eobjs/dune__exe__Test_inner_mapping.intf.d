test/test_inner_mapping.mli:
