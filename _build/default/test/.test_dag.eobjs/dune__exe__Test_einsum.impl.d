test/test_einsum.ml: Alcotest Cascade Einsum Extents Float List Printf QCheck QCheck_alcotest Scalar_op Tensor_ref Tf_dag Tf_einsum
