test/test_cascades.ml: Alcotest Array Cascade Einsum Extents Float List QCheck QCheck_alcotest Random Scalar_op Tf_dag Tf_einsum Tf_tensor Transfusion
