test/test_robustness.ml: Alcotest Filename Float List Model Presets String Tf_arch Tf_costmodel Tf_einsum Tf_experiments Tf_workloads Transfusion Workload
