test/test_buffer_req.mli:
