test/test_inner_mapping.ml: Alcotest Extents List QCheck QCheck_alcotest Tf_arch Tf_einsum Transfusion
