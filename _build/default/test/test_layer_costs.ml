(* Tests for the whole-layer load accounting: the per-operation totals
   that every figure rests on, checked against closed-form expectations
   derived from Eq. 40 and the instance-count rules. *)

module Layer_costs = Transfusion.Layer_costs
module Cascades = Transfusion.Cascades
open Tf_workloads

let model =
  Model.v ~name:"lc" ~d_model:64 ~heads:4 ~head_dim:16 ~ffn_hidden:128 ~layers:2
    ~activation:Tf_einsum.Scalar_op.Relu

let w = Workload.v ~batch:2 model ~seq_len:1024
let fi = float_of_int

let totals_by_name ?m0 ?kv_len ?causal cascade =
  List.map
    (fun (ot : Layer_costs.op_total) -> (ot.Layer_costs.op.Tf_einsum.Einsum.name, ot))
    (Layer_costs.op_totals ?m0 ?kv_len ?causal w cascade)

let test_bqk_total () =
  (* BQK load = B * H * N^2 * E, independent of m0. *)
  let expected = fi 2 *. fi 4 *. fi 1024 *. fi 1024 *. fi 16 in
  List.iter
    (fun m0 ->
      let t = List.assoc "BQK" (totals_by_name ~m0 (Cascades.mha ())) in
      Alcotest.(check (float 1.)) (Printf.sprintf "BQK total (m0=%d)" m0) expected
        t.Layer_costs.total)
    [ 64; 256; 1024 ]

let test_state_updates_scale_with_tiles () =
  (* RM runs once per key/value tile: total = B * H * N * (N/m0). *)
  let check m0 =
    let t = List.assoc "RM" (totals_by_name ~m0 (Cascades.mha ())) in
    let expected = fi 2 *. fi 4 *. fi 1024 *. (fi 1024 /. fi m0) in
    Alcotest.(check (float 1.)) (Printf.sprintf "RM total (m0=%d)" m0) expected t.Layer_costs.total
  in
  check 64;
  check 256

let test_av_final_only () =
  (* AV runs once per sequence pass, not per key/value tile: its total is
     m0-independent and carries the div cost factor 2. *)
  let total m0 = (List.assoc "AV" (totals_by_name ~m0 (Cascades.mha ()))).Layer_costs.total in
  Alcotest.(check (float 1e-6)) "m0-independent" (total 64) (total 256);
  let expected = fi 2 *. fi 4 *. fi 16 *. fi 1024 *. 2. in
  Alcotest.(check (float 1.)) "B*H*F*N x cost(div)" expected (total 256)

let test_qkv_totals () =
  (* Each projection moves B * N * D^2 multiply-accumulate slots. *)
  let expected = fi 2 *. fi 1024 *. fi 64 *. fi 64 in
  List.iter
    (fun name ->
      let t = List.assoc name (totals_by_name ~m0:256 (Cascades.qkv ())) in
      Alcotest.(check (float 1.)) name expected t.Layer_costs.total)
    [ "Q"; "BK"; "BV" ]

let test_ffn_totals () =
  let by_name = totals_by_name (Cascades.ffn Tf_einsum.Scalar_op.Relu) in
  let expected_mm = fi 2 *. fi 1024 *. fi 64 *. fi 128 in
  Alcotest.(check (float 1.)) "FFN1" expected_mm (List.assoc "FFN1" by_name).Layer_costs.total;
  Alcotest.(check (float 1.)) "FFN2" expected_mm (List.assoc "FFN2" by_name).Layer_costs.total;
  (* ReLU costs one slot per hidden element. *)
  Alcotest.(check (float 1.)) "AR" (fi 2 *. fi 1024 *. fi 128)
    (List.assoc "AR" by_name).Layer_costs.total

let test_layernorm_totals () =
  (* The 9-op cascade touches each of the B*N*D activations a small
     constant number of times; rsqrt is per token. *)
  let loads = Layer_costs.add_layernorm w in
  let bnd = fi 2 *. fi 1024 *. fi 64 in
  Alcotest.(check (float 0.)) "no matrix work" 0. loads.Layer_costs.matrix;
  Alcotest.(check bool) "vector work is a few passes over B*N*D" true
    (loads.Layer_costs.vector > 5. *. bnd && loads.Layer_costs.vector < 12. *. bnd)

let test_total_additive () =
  let total = Layer_costs.total ~m0:256 w in
  let parts =
    [
      Layer_costs.qkv ~m0:256 w;
      Layer_costs.mha ~m0:256 w;
      Layer_costs.add_layernorm w;
      Layer_costs.ffn w;
    ]
  in
  let sum =
    List.fold_left Layer_costs.add_loads Layer_costs.zero parts
  in
  Alcotest.(check (float 1e-3)) "matrix sums" sum.Layer_costs.matrix total.Layer_costs.matrix;
  Alcotest.(check (float 1e-3)) "vector sums" sum.Layer_costs.vector total.Layer_costs.vector

let test_validation () =
  Alcotest.(check bool) "m0 must divide" true
    (try ignore (Layer_costs.op_totals ~m0:3000 w (Cascades.mha ())); false
     with Invalid_argument _ -> true)

let prop_batch_linearity =
  QCheck.Test.make ~name:"totals are linear in batch size" ~count:30
    QCheck.(int_range 1 16)
    (fun b ->
      let w1 = Workload.v ~batch:1 model ~seq_len:256 in
      let wb = Workload.v ~batch:b model ~seq_len:256 in
      let l1 = Layer_costs.total ~m0:64 w1 and lb = Layer_costs.total ~m0:64 wb in
      Float.abs (lb.Layer_costs.matrix -. (fi b *. l1.Layer_costs.matrix)) < 1.
      && Float.abs (lb.Layer_costs.vector -. (fi b *. l1.Layer_costs.vector)) < 1.)

let prop_causal_halves_matrix =
  QCheck.Test.make ~name:"causal exactly halves attention matrix work" ~count:20
    QCheck.(int_range 0 3)
    (fun shift ->
      let m0 = 64 lsl shift in
      let full = Layer_costs.mha ~m0 w in
      let causal = Layer_costs.mha ~m0 ~causal:true w in
      Float.abs ((2. *. causal.Layer_costs.matrix) -. full.Layer_costs.matrix) < 1.)

let prop_kv_len_scaling =
  QCheck.Test.make ~name:"attention matrix work is linear in kv length" ~count:20
    QCheck.(int_range 1 4)
    (fun k ->
      let kv_len = 256 * k in
      let base = Layer_costs.mha ~m0:64 ~kv_len:256 w in
      let scaled = Layer_costs.mha ~m0:64 ~kv_len w in
      Float.abs (scaled.Layer_costs.matrix -. (fi k *. base.Layer_costs.matrix)) < 1.)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_layer_costs"
    [
      ( "layer_costs",
        [
          quick "BQK closed form" test_bqk_total;
          quick "state updates per tile" test_state_updates_scale_with_tiles;
          quick "AV final-only" test_av_final_only;
          quick "QKV projections" test_qkv_totals;
          quick "FFN matmuls and activation" test_ffn_totals;
          quick "LayerNorm passes" test_layernorm_totals;
          quick "module totals additive" test_total_additive;
          quick "validation" test_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_batch_linearity; prop_causal_halves_matrix; prop_kv_len_scaling ] );
    ]
