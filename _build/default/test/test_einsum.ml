(* Tests for the Extended-Einsum IR: scalar operations, tensor references,
   extent environments, operation validation, load analysis (paper Eq. 40)
   and cascades. *)

open Tf_einsum

let r = Tensor_ref.v

(* Scalar operations ------------------------------------------------- *)

let test_scalar_semantics () =
  let check name expected op args =
    Alcotest.(check (float 1e-12)) name expected (Scalar_op.apply op args)
  in
  check "add" 5. Scalar_op.Add [ 2.; 3. ];
  check "sub" (-1.) Scalar_op.Sub [ 2.; 3. ];
  check "mul" 6. Scalar_op.Mul [ 2.; 3. ];
  check "div" 2.5 Scalar_op.Div [ 5.; 2. ];
  check "max2" 3. Scalar_op.Max2 [ 2.; 3. ];
  check "exp" (exp 1.5) Scalar_op.Exp [ 1.5 ];
  check "exp_diff" (exp (-1.)) Scalar_op.Exp_diff [ 2.; 3. ];
  check "rsqrt" 0.5 Scalar_op.Rsqrt [ 4. ];
  check "copy" 7. Scalar_op.Copy [ 7. ];
  check "relu positive" 2. (Scalar_op.Activation Scalar_op.Relu) [ 2. ];
  check "relu negative" 0. (Scalar_op.Activation Scalar_op.Relu) [ -2. ];
  check "sigmoid at 0" 0.5 (Scalar_op.Activation Scalar_op.Sigmoid) [ 0. ];
  check "silu at 0" 0. (Scalar_op.Activation Scalar_op.Silu) [ 0. ]

let test_scalar_arity () =
  Alcotest.check_raises "add arity" (Invalid_argument "Scalar_op.apply: arity mismatch") (fun () ->
      ignore (Scalar_op.apply Scalar_op.Add [ 1. ]))

let test_scalar_costs () =
  Alcotest.(check (float 0.)) "add" 1.0 (Scalar_op.cost_factor Scalar_op.Add);
  Alcotest.(check (float 0.)) "div" 2.0 (Scalar_op.cost_factor Scalar_op.Div);
  Alcotest.(check (float 0.)) "exp" 2.0 (Scalar_op.cost_factor Scalar_op.Exp);
  Alcotest.(check (float 0.)) "relu" 1.0 (Scalar_op.cost_factor (Scalar_op.Activation Scalar_op.Relu));
  Alcotest.(check (float 0.)) "gelu" 2.0 (Scalar_op.cost_factor (Scalar_op.Activation Scalar_op.Gelu));
  Alcotest.(check (float 0.)) "reduce" 1.0 (Scalar_op.reduce_cost_factor Scalar_op.Sum)

let test_reduce_semantics () =
  Alcotest.(check (float 0.)) "sum identity" 0. (Scalar_op.reduce_identity Scalar_op.Sum);
  Alcotest.(check (float 0.)) "max identity" Float.neg_infinity
    (Scalar_op.reduce_identity Scalar_op.Max_reduce);
  Alcotest.(check (float 0.)) "sum" 5. (Scalar_op.reduce_apply Scalar_op.Sum 2. 3.);
  Alcotest.(check (float 0.)) "max" 3. (Scalar_op.reduce_apply Scalar_op.Max_reduce 2. 3.)

(* Tensor references and extents ------------------------------------- *)

let test_tensor_ref () =
  let q = r "Q" [ "h"; "e"; "p" ] in
  Alcotest.(check int) "rank" 3 (Tensor_ref.rank q);
  Alcotest.(check bool) "mem" true (Tensor_ref.mem_index "e" q);
  Alcotest.(check string) "to_string" "Q[h,e,p]" (Tensor_ref.to_string q);
  Alcotest.(check string) "scalar" "G" (Tensor_ref.to_string (Tensor_ref.scalar "G"));
  Alcotest.check_raises "duplicate index" (Invalid_argument "Tensor_ref.v: duplicate index in X")
    (fun () -> ignore (r "X" [ "a"; "a" ]))

let test_indices_of_many () =
  Alcotest.(check (list string)) "union sorted" [ "e"; "h"; "m0"; "p" ]
    (Tensor_ref.indices_of_many [ r "Q" [ "h"; "e"; "p" ]; r "K" [ "h"; "e"; "m0" ] ])

let test_extents () =
  let e = Extents.of_list [ ("a", 2); ("b", 3) ] in
  Alcotest.(check int) "find" 3 (Extents.find e "b");
  Alcotest.(check int) "product" 6 (Extents.product e [ "a"; "b" ]);
  Alcotest.(check int) "empty product" 1 (Extents.product e []);
  Alcotest.(check int) "volume" 6 (Extents.volume e (r "X" [ "a"; "b" ]));
  Alcotest.(check bool) "mem" false (Extents.mem e "z");
  Alcotest.check_raises "duplicate" (Invalid_argument "Extents.of_list: duplicate a") (fun () ->
      ignore (Extents.of_list [ ("a", 1); ("a", 2) ]));
  Alcotest.check_raises "non-positive" (Invalid_argument "Extents.add: extent 0 for z") (fun () ->
      ignore (Extents.add "z" 0 e))

(* Einsum operations -------------------------------------------------- *)

let matmul = Einsum.contraction (r "Z" [ "m"; "n" ]) [ r "A" [ "m"; "k" ]; r "B" [ "k"; "n" ] ]

let test_validation () =
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "contraction arity" (fun () -> Einsum.contraction (r "Z" [ "m" ]) [ r "A" [ "m" ] ]);
  raises "contraction output index unbound" (fun () ->
      Einsum.contraction (r "Z" [ "q" ]) [ r "A" [ "m" ]; r "B" [ "m" ] ]);
  raises "reduce must reduce" (fun () ->
      Einsum.reduce Scalar_op.Sum (r "Z" [ "m" ]) (r "A" [ "m" ]));
  raises "reduce output subset" (fun () ->
      Einsum.reduce Scalar_op.Sum (r "Z" [ "q" ]) (r "A" [ "m" ]));
  raises "map broadcast violation" (fun () ->
      Einsum.map Scalar_op.Copy (r "Z" [ "m" ]) [ r "A" [ "m"; "k" ] ]);
  raises "map arity" (fun () -> Einsum.map Scalar_op.Add (r "Z" [ "m" ]) [ r "A" [ "m" ] ])

let test_dims () =
  Alcotest.(check (list string)) "output dims" [ "m"; "n" ] (Einsum.output_dims matmul);
  Alcotest.(check (list string)) "reduction dims" [ "k" ] (Einsum.reduction_dims matmul);
  Alcotest.(check (list string)) "all dims" [ "k"; "m"; "n" ] (Einsum.all_dims matmul)

let test_compute_load () =
  let extents = Extents.of_list [ ("m", 4); ("k", 5); ("n", 6) ] in
  (* Eq. 40: product of output dims times product of reduction dims. *)
  Alcotest.(check (float 0.)) "contraction load" (4. *. 6. *. 5.) (Einsum.compute_load extents matmul);
  Alcotest.(check (float 0.)) "flops = 2x load" (2. *. 120.) (Einsum.flops extents matmul);
  let expmap = Einsum.map Scalar_op.Exp (r "Z2" [ "m"; "n" ]) [ r "A" [ "m"; "n" ] ] in
  Alcotest.(check (float 0.)) "map load scaled by cost factor" (4. *. 6. *. 2.)
    (Einsum.compute_load extents expmap);
  Alcotest.(check (float 0.)) "map flops unscaled" 24. (Einsum.flops extents expmap);
  let red = Einsum.reduce Scalar_op.Sum (r "Z3" [ "m" ]) (r "A" [ "m"; "k" ]) in
  Alcotest.(check (float 0.)) "reduce load" (4. *. 5.) (Einsum.compute_load extents red)

let test_matrix_class () =
  Alcotest.(check bool) "matmul is matrix" true (Einsum.is_matrix_op matmul);
  let broadcast_mul = Einsum.map Scalar_op.Mul (r "Z4" [ "m" ]) [ r "A" [ "m" ]; r "B" [ "m" ] ] in
  Alcotest.(check bool) "map is vector" false (Einsum.is_matrix_op broadcast_mul);
  let red = Einsum.reduce Scalar_op.Sum (r "Z5" [ "m" ]) (r "A" [ "m"; "k" ]) in
  Alcotest.(check bool) "reduce is vector" false (Einsum.is_matrix_op red)

let test_naming () =
  Alcotest.(check string) "default name" "Z" matmul.Einsum.name;
  Alcotest.(check string) "rename" "other" (Einsum.rename "other" matmul).Einsum.name;
  Alcotest.(check string) "output tensor" "Z" (Einsum.output_tensor matmul);
  Alcotest.(check (list string)) "input tensors" [ "A"; "B" ] (Einsum.input_tensors matmul)

(* Cascades ----------------------------------------------------------- *)

let softmax_cascade () =
  (* The extended-einsum softmax of paper Eq. 6-8. *)
  Cascade.v ~name:"softmax"
    [
      Einsum.reduce Scalar_op.Max_reduce (Tensor_ref.scalar "G") (r "I" [ "m" ]);
      Einsum.map Scalar_op.Exp_diff (r "S" [ "m" ]) [ r "I" [ "m" ]; Tensor_ref.scalar "G" ];
      Einsum.reduce Scalar_op.Sum (Tensor_ref.scalar "D") (r "S" [ "m" ]);
      Einsum.map Scalar_op.Div (r "A" [ "m" ]) [ r "S" [ "m" ]; Tensor_ref.scalar "D" ];
    ]

let test_cascade_structure () =
  let c = softmax_cascade () in
  Alcotest.(check int) "length" 4 (Cascade.length c);
  Alcotest.(check (list string)) "externals" [ "I" ] (Cascade.external_inputs c);
  Alcotest.(check (list string)) "results" [ "A" ] (Cascade.results c);
  Alcotest.(check (list string)) "produced" [ "G"; "S"; "D"; "A" ] (Cascade.produced c);
  Alcotest.(check (list string)) "indices" [ "m" ] (Cascade.indices c);
  Alcotest.(check bool) "find_op" true (Cascade.find_op c "S" <> None);
  Alcotest.(check bool) "find_op missing" true (Cascade.find_op c "nope" = None)

let test_cascade_dag () =
  let g = Cascade.to_dag (softmax_cascade ()) in
  Alcotest.(check bool) "acyclic" true (Tf_dag.Dag.is_acyclic g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2); (1, 3); (2, 3) ]
    (Tf_dag.Dag.edges g)

let test_cascade_validation () =
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "duplicate op name" (fun () -> Cascade.v [ matmul; matmul ]);
  raises "tensor produced twice" (fun () ->
      Cascade.v
        [
          Einsum.map ~name:"first" Scalar_op.Copy (r "Z" [ "m" ]) [ r "A" [ "m" ] ];
          Einsum.map ~name:"second" Scalar_op.Copy (r "Z" [ "m" ]) [ r "B" [ "m" ] ];
        ]);
  raises "read before produced" (fun () ->
      Cascade.v
        [
          Einsum.map Scalar_op.Copy (r "Y" [ "m" ]) [ r "Z" [ "m" ] ];
          Einsum.map Scalar_op.Copy (r "Z" [ "m" ]) [ r "A" [ "m" ] ];
        ])

let test_cascade_loads () =
  let extents = Extents.of_list [ ("m", 8) ] in
  let c = softmax_cascade () in
  (* G: 8, S: 8*2, D: 8, A: 8*2 -> 48 load slots; flops 8+8+8+8 = 32. *)
  Alcotest.(check (float 0.)) "total load" 48. (Cascade.total_compute_load extents c);
  Alcotest.(check (float 0.)) "total flops" 32. (Cascade.total_flops extents c)

let test_cascade_concat () =
  let a = Cascade.v ~name:"a" [ Einsum.map Scalar_op.Copy (r "Y" [ "m" ]) [ r "X" [ "m" ] ] ] in
  let b = Cascade.v ~name:"b" [ Einsum.map Scalar_op.Exp (r "Z" [ "m" ]) [ r "Y" [ "m" ] ] ] in
  let c = Cascade.concat ~name:"ab" [ a; b ] in
  Alcotest.(check (list string)) "externals" [ "X" ] (Cascade.external_inputs c);
  Alcotest.(check (list string)) "results" [ "Z" ] (Cascade.results c)

let test_check_extents () =
  let c = softmax_cascade () in
  (match Cascade.check_extents (Extents.of_list [ ("m", 4) ]) c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected error %s" e);
  match Cascade.check_extents Extents.empty c with
  | Ok () -> Alcotest.fail "expected unbound index"
  | Error _ -> ()

(* Properties --------------------------------------------------------- *)

let prop_contraction_load =
  QCheck.Test.make ~name:"contraction load = |out| * |red| (Eq. 40)" ~count:200
    QCheck.(triple (int_range 1 16) (int_range 1 16) (int_range 1 16))
    (fun (m, k, n) ->
      let extents = Extents.of_list [ ("m", m); ("k", k); ("n", n) ] in
      Einsum.compute_load extents matmul = float_of_int (m * k * n))

let prop_cascade_chain =
  QCheck.Test.make ~name:"cascade chains: DAG, externals, results" ~count:50
    QCheck.(int_range 1 20)
    (fun n ->
      let ops =
        List.init n (fun i ->
            let src = if i = 0 then "X" else Printf.sprintf "T%d" (i - 1) in
            Einsum.map Scalar_op.Exp (r (Printf.sprintf "T%d" i) [ "m" ]) [ r src [ "m" ] ])
      in
      let c = Cascade.v ops in
      Tf_dag.Dag.is_acyclic (Cascade.to_dag c)
      && Cascade.external_inputs c = [ "X" ]
      && Cascade.results c = [ Printf.sprintf "T%d" (n - 1) ])

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_einsum"
    [
      ( "scalar_op",
        [
          quick "semantics" test_scalar_semantics;
          quick "arity errors" test_scalar_arity;
          quick "cost factors" test_scalar_costs;
          quick "reductions" test_reduce_semantics;
        ] );
      ( "refs_extents",
        [
          quick "tensor refs" test_tensor_ref;
          quick "index union" test_indices_of_many;
          quick "extent environments" test_extents;
        ] );
      ( "einsum",
        [
          quick "validation" test_validation;
          quick "dimension classification" test_dims;
          quick "compute load (Eq. 40)" test_compute_load;
          quick "matrix vs vector class" test_matrix_class;
          quick "naming" test_naming;
        ] );
      ( "cascade",
        [
          quick "structure" test_cascade_structure;
          quick "dependency DAG" test_cascade_dag;
          quick "validation" test_cascade_validation;
          quick "loads" test_cascade_loads;
          quick "concat" test_cascade_concat;
          quick "check_extents" test_check_extents;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_contraction_load; prop_cascade_chain ] );
    ]
