(* Tests for the paper's Einsum Cascades (1-4): structural checks against
   the paper's definitions, and numerical validation by interpreting the
   cascades on real tensors and comparing with the naive references. *)

module Nd = Tf_tensor.Nd
module Ops = Tf_tensor.Ops
module Interp = Tf_tensor.Cascade_interp
module Cascades = Transfusion.Cascades
open Tf_einsum

let rng seed = Random.State.make [| seed |]

(* Structure ------------------------------------------------------------ *)

let test_mha_structure () =
  let c = Cascades.mha () in
  (* Exactly the 12 Einsums of paper Cascade 1. *)
  Alcotest.(check (list string)) "op names"
    [ "BQK"; "LM"; "RM"; "SLN"; "SLD"; "SLNV"; "PRM"; "SPD"; "RD"; "SPNV"; "RNV"; "AV" ]
    (List.map (fun (o : Einsum.t) -> o.Einsum.name) (Cascade.ops c));
  Alcotest.(check (list string)) "externals"
    [ "BK"; "BV"; "Q"; "RD_prev"; "RM_prev"; "RNV_prev" ]
    (Cascade.external_inputs c);
  Alcotest.(check bool) "AV is a result" true (List.mem "AV" (Cascade.results c));
  Alcotest.(check bool) "acyclic" true (Tf_dag.Dag.is_acyclic (Cascade.to_dag c));
  Alcotest.(check (list string)) "names helper" (Cascades.mha_op_names)
    (List.map (fun (o : Einsum.t) -> o.Einsum.name) (Cascade.ops c))

let test_qkv_structure () =
  let c = Cascades.qkv () in
  Alcotest.(check int) "three projections" 3 (Cascade.length c);
  Alcotest.(check (list string)) "externals" [ "INPUT"; "INPUT_KV"; "WK"; "WQ"; "WV" ]
    (Cascade.external_inputs c);
  (* The three projections are independent: no edges. *)
  Alcotest.(check int) "no dependencies" 0 (Tf_dag.Dag.edge_count (Cascade.to_dag c))

let test_layernorm_structure () =
  let c = Cascades.add_layernorm () in
  Alcotest.(check int) "nine einsums" 9 (Cascade.length c);
  Alcotest.(check (list string)) "externals" [ "AV"; "INP"; "INV_HF" ] (Cascade.external_inputs c);
  Alcotest.(check (list string)) "result" [ "NR" ] (Cascade.results c)

let test_ffn_structure () =
  let c = Cascades.ffn Scalar_op.Relu in
  Alcotest.(check int) "five einsums" 5 (Cascade.length c);
  Alcotest.(check (list string)) "externals" [ "BF1"; "BF2"; "NR"; "WF1"; "WF2" ]
    (Cascade.external_inputs c);
  Alcotest.(check (list string)) "result" [ "FFN2B" ] (Cascade.results c)

let test_full_layer_structure () =
  let c = Cascades.full_layer Scalar_op.Silu in
  Alcotest.(check int) "3+12+9+5 einsums" 29 (Cascade.length c);
  Alcotest.(check bool) "acyclic" true (Tf_dag.Dag.is_acyclic (Cascade.to_dag c));
  (* The MHA consumes the QKV outputs, the FFN consumes NR: externals are
     only true layer inputs, weights, constants and recurrent state. *)
  Alcotest.(check (list string)) "externals"
    [ "BF1"; "BF2"; "INP"; "INPUT"; "INPUT_KV"; "INV_HF"; "RD_prev"; "RM_prev"; "RNV_prev"; "WF1"; "WF2"; "WK"; "WQ"; "WV" ]
    (Cascade.external_inputs c);
  Alcotest.(check (list string)) "final result" [ "FFN2B" ] (Cascade.results c)

(* Numerical validation -------------------------------------------------- *)

(* Interpret Cascade 1 tile by tile over the m1 loop, threading the
   running state, and compare the final AV with reference attention. *)
let run_mha_cascade ~h ~e ~f ~p ~m0 ~tiles state =
  let extents = Extents.of_list [ ("h", h); ("e", e); ("f", f); ("p", p); ("m0", m0) ] in
  let m = m0 * tiles in
  let q = Nd.random state [| h; e; p |] in
  let k = Nd.random state [| h; e; m |] in
  let v = Nd.random state [| h; f; m |] in
  let rm = ref (Nd.create [| h; p |] Float.neg_infinity) in
  let rd = ref (Nd.create [| h; p |] 0.) in
  let rnv = ref (Nd.create [| h; f; p |] 0.) in
  let av = ref (Nd.create [| h; f; p |] 0.) in
  for tile = 0 to tiles - 1 do
    let base = tile * m0 in
    let bk = Nd.init [| h; e; m0 |] (fun i -> Nd.get k [| i.(0); i.(1); base + i.(2) |]) in
    let bv = Nd.init [| h; f; m0 |] (fun i -> Nd.get v [| i.(0); i.(1); base + i.(2) |]) in
    let outputs =
      Interp.run extents (Cascades.mha ())
        ~inputs:
          [ ("Q", q); ("BK", bk); ("BV", bv); ("RM_prev", !rm); ("RD_prev", !rd); ("RNV_prev", !rnv) ]
    in
    rm := List.assoc "RM" outputs;
    rd := List.assoc "RD" outputs;
    rnv := List.assoc "RNV" outputs;
    av := List.assoc "AV" outputs
  done;
  (* Reference, head by head. *)
  let reference = Nd.create [| h; f; p |] 0. in
  for head = 0 to h - 1 do
    let qh = Nd.init [| p; e |] (fun i -> Nd.get q [| head; i.(1); i.(0) |]) in
    let kh = Nd.init [| m; e |] (fun i -> Nd.get k [| head; i.(1); i.(0) |]) in
    let vh = Nd.init [| m; f |] (fun i -> Nd.get v [| head; i.(1); i.(0) |]) in
    let out = Tf_tensor.Attention.reference ~q:qh ~k:kh ~v:vh () in
    for i = 0 to p - 1 do
      for j = 0 to f - 1 do
        Nd.set reference [| head; j; i |] (Nd.get out [| i; j |])
      done
    done
  done;
  (!av, reference)

let test_mha_cascade_numeric () =
  let av, reference = run_mha_cascade ~h:2 ~e:3 ~f:4 ~p:5 ~m0:2 ~tiles:3 (rng 11) in
  Alcotest.(check bool) "cascade 1 == reference attention" true
    (Nd.max_abs_diff av reference < 1e-10)

let test_mha_cascade_single_tile () =
  let av, reference = run_mha_cascade ~h:1 ~e:4 ~f:4 ~p:3 ~m0:6 ~tiles:1 (rng 12) in
  Alcotest.(check bool) "single tile" true (Nd.max_abs_diff av reference < 1e-10)

let prop_mha_cascade =
  QCheck.Test.make ~name:"Cascade 1 == reference attention (random shapes)" ~count:20
    QCheck.(quad (int_range 1 3) (int_range 1 4) (int_range 1 3) (int_range 0 1000))
    (fun (h, p, tiles, seed) ->
      let av, reference = run_mha_cascade ~h ~e:3 ~f:2 ~p ~m0:2 ~tiles (rng seed) in
      Nd.max_abs_diff av reference < 1e-9)

let test_qkv_cascade_numeric () =
  let d = 6 and h = 2 and e = 3 and f = 3 and p = 4 and m0 = 5 in
  let extents =
    Extents.of_list [ ("d", d); ("h", h); ("e", e); ("f", f); ("p", p); ("m0", m0) ]
  in
  let state = rng 21 in
  let input = Nd.random state [| d; p |] in
  let input_kv = Nd.random state [| d; m0 |] in
  let wq = Nd.random state [| d; h; e |] in
  let wk = Nd.random state [| d; h; e |] in
  let wv = Nd.random state [| d; h; f |] in
  let outputs =
    Interp.run extents (Cascades.qkv ())
      ~inputs:[ ("INPUT", input); ("INPUT_KV", input_kv); ("WQ", wq); ("WK", wk); ("WV", wv) ]
  in
  let q = List.assoc "Q" outputs in
  (* Check one projection against an explicit contraction. *)
  let worst = ref 0. in
  for hh = 0 to h - 1 do
    for ee = 0 to e - 1 do
      for pp = 0 to p - 1 do
        let acc = ref 0. in
        for dd = 0 to d - 1 do
          acc := !acc +. (Nd.get input [| dd; pp |] *. Nd.get wq [| dd; hh; ee |])
        done;
        worst := Float.max !worst (Float.abs (!acc -. Nd.get q [| hh; ee; pp |]))
      done
    done
  done;
  Alcotest.(check bool) "Q projection" true (!worst < 1e-12);
  Alcotest.(check (array int)) "BK shape" [| h; e; m0 |] (Nd.shape (List.assoc "BK" outputs));
  Alcotest.(check (array int)) "BV shape" [| h; f; m0 |] (Nd.shape (List.assoc "BV" outputs))

let test_layernorm_cascade_numeric () =
  let h = 2 and f = 4 and p = 3 in
  let extents = Extents.of_list [ ("h", h); ("f", f); ("p", p) ] in
  let state = rng 31 in
  let inp = Nd.random state [| h; f; p |] in
  let av = Nd.random state [| h; f; p |] in
  let inv_hf = Nd.scalar (1. /. float_of_int (h * f)) in
  let outputs =
    Interp.run extents (Cascades.add_layernorm ())
      ~inputs:[ ("INP", inp); ("AV", av); ("INV_HF", inv_hf) ]
  in
  let nr = List.assoc "NR" outputs in
  (* Reference: layernorm over the flattened (h, f) vector per token. *)
  let rows =
    Nd.init [| p; h * f |] (fun i ->
        let hh = i.(1) / f and ff = i.(1) mod f in
        Nd.get inp [| hh; ff; i.(0) |] +. Nd.get av [| hh; ff; i.(0) |])
  in
  let expected = Ops.layernorm_rows rows in
  let worst = ref 0. in
  for i = 0 to p - 1 do
    for j = 0 to (h * f) - 1 do
      let hh = j / f and ff = j mod f in
      worst := Float.max !worst (Float.abs (Nd.get expected [| i; j |] -. Nd.get nr [| hh; ff; i |]))
    done
  done;
  Alcotest.(check bool) "cascade 3 == reference layernorm" true (!worst < 1e-9)

let test_ffn_cascade_numeric () =
  let h = 2 and f = 3 and s = 5 and p = 4 in
  let extents = Extents.of_list [ ("h", h); ("f", f); ("s", s); ("p", p) ] in
  let state = rng 41 in
  let nr = Nd.random state [| h; f; p |] in
  let wf1 = Nd.random state [| h; f; s |] in
  let bf1 = Nd.random state [| s |] in
  let wf2 = Nd.random state [| h; f; s |] in
  let bf2 = Nd.random state [| h; f |] in
  let outputs =
    Interp.run extents (Cascades.ffn Scalar_op.Relu)
      ~inputs:[ ("NR", nr); ("WF1", wf1); ("BF1", bf1); ("WF2", wf2); ("BF2", bf2) ]
  in
  let ffn2b = List.assoc "FFN2B" outputs in
  (* Flattened reference through Ops. *)
  let x = Nd.init [| p; h * f |] (fun i -> Nd.get nr [| i.(1) / f; i.(1) mod f; i.(0) |]) in
  let w1 = Nd.init [| h * f; s |] (fun i -> Nd.get wf1 [| i.(0) / f; i.(0) mod f; i.(1) |]) in
  let w2t = Nd.init [| s; h * f |] (fun i -> Nd.get wf2 [| i.(1) / f; i.(1) mod f; i.(0) |]) in
  let hidden = Ops.activation Scalar_op.Relu (Ops.add_row_bias (Ops.matmul x w1) bf1) in
  let out = Ops.matmul hidden w2t in
  let worst = ref 0. in
  for i = 0 to p - 1 do
    for j = 0 to (h * f) - 1 do
      let hh = j / f and ff = j mod f in
      let expect = Nd.get out [| i; j |] +. Nd.get bf2 [| hh; ff |] in
      worst := Float.max !worst (Float.abs (expect -. Nd.get ffn2b [| hh; ff; i |]))
    done
  done;
  Alcotest.(check bool) "cascade 4 == reference ffn" true (!worst < 1e-9)

let test_final_only_ops () =
  Alcotest.(check (list string)) "AV runs on last iteration only" [ "AV" ] Cascades.final_only_ops;
  List.iter
    (fun name -> Alcotest.(check bool) name true (List.mem name Cascades.mha_op_names))
    Cascades.final_only_ops

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_cascades"
    [
      ( "structure",
        [
          quick "MHA (Cascade 1, 12 einsums)" test_mha_structure;
          quick "QKV (Cascade 2)" test_qkv_structure;
          quick "Add&LayerNorm (Cascade 3)" test_layernorm_structure;
          quick "FFN (Cascade 4)" test_ffn_structure;
          quick "full fused layer" test_full_layer_structure;
          quick "final-only ops" test_final_only_ops;
        ] );
      ( "numeric",
        [
          quick "MHA cascade across m1 tiles" test_mha_cascade_numeric;
          quick "MHA cascade single tile" test_mha_cascade_single_tile;
          quick "QKV cascade" test_qkv_cascade_numeric;
          quick "LayerNorm cascade" test_layernorm_cascade_numeric;
          quick "FFN cascade" test_ffn_cascade_numeric;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_mha_cascade ]);
    ]
