(* Failure injection and degenerate-input robustness: tiny buffers,
   single-head / single-batch workloads, invalid model shapes, and the
   export/selftest utilities. *)

module Strategies = Transfusion.Strategies
module Tileseek = Transfusion.Tileseek
module Latency = Tf_costmodel.Latency
open Tf_workloads

let tiny_model =
  Model.v ~name:"tiny" ~d_model:8 ~heads:1 ~head_dim:8 ~ffn_hidden:16 ~layers:1
    ~activation:Tf_einsum.Scalar_op.Relu

let test_model_validation () =
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "d_model mismatch" (fun () ->
      Model.v ~name:"bad" ~d_model:100 ~heads:3 ~head_dim:32 ~ffn_hidden:64 ~layers:1
        ~activation:Tf_einsum.Scalar_op.Relu);
  raises "non-positive" (fun () ->
      Model.v ~name:"bad" ~d_model:0 ~heads:1 ~head_dim:0 ~ffn_hidden:1 ~layers:1
        ~activation:Tf_einsum.Scalar_op.Relu);
  raises "bad workload" (fun () -> Workload.v tiny_model ~seq_len:0);
  raises "bad batch" (fun () -> Workload.v ~batch:0 tiny_model ~seq_len:64)

let test_degenerate_workloads () =
  (* Single batch, single head, short sequence: every strategy still
     evaluates and orders sanely. *)
  let w = Workload.v ~batch:1 tiny_model ~seq_len:64 in
  List.iter
    (fun arch ->
      let totals =
        List.map
          (fun s ->
            (Strategies.evaluate ~tileseek_iterations:30 arch w s).Strategies.latency
              .Latency.total_s)
          Strategies.all
      in
      List.iter
        (fun t ->
          Alcotest.(check bool) "finite positive latency" true (Float.is_finite t && t > 0.))
        totals)
    [ Tf_arch.Presets.cloud; Tf_arch.Presets.edge ]

let test_tiny_buffer_fallback () =
  (* A buffer too small for even the minimal tile: TileSeek refuses
     loudly rather than fabricating a config. *)
  let starved =
    Tf_arch.Arch.v ~name:"starved" ~pe_2d:(Tf_arch.Pe_array.two_d 4 4)
      ~pe_1d:(Tf_arch.Pe_array.one_d 4) ~buffer_bytes:64 ~dram_bw_bytes_per_s:1e9 ()
  in
  let w = Workload.v Presets.llama3 ~seq_len:4096 in
  Alcotest.(check bool) "fallback refuses" true
    (try ignore (Tileseek.fallback starved w); false with Invalid_argument _ -> true)

let test_seq_one_tile () =
  (* A sequence equal to one key/value tile (m1 = 1 everywhere). *)
  let w = Workload.v ~batch:1 tiny_model ~seq_len:256 in
  let r = Strategies.evaluate ~tileseek_iterations:30 Tf_arch.Presets.edge w Strategies.Transfusion in
  Alcotest.(check bool) "evaluates" true (r.Strategies.latency.Latency.total_s > 0.)

let test_non_pow2_seq () =
  (* Sequence lengths that are not powers of two still work (m0 falls
     back to a dividing factor). *)
  let w = Workload.v ~batch:2 tiny_model ~seq_len:(3 * 256) in
  let r = Strategies.evaluate ~tileseek_iterations:30 Tf_arch.Presets.edge w Strategies.Fusemax in
  Alcotest.(check bool) "evaluates" true (Float.is_finite r.Strategies.latency.Latency.total_s)

let test_export_csv () =
  let csv =
    Tf_experiments.Export.csv ~columns:[ "a"; "b" ]
      ~rows:[ ("plain", [ 1.; 2.5 ]); ("with,comma", [ 3.; 4. ]) ]
  in
  Alcotest.(check bool) "header" true (String.length csv > 0 && String.sub csv 0 9 = "label,a,b");
  Alcotest.(check bool) "quoted comma" true
    (let lines = String.split_on_char '\n' csv in
     List.exists (fun l -> String.length l > 0 && l.[0] = '"') lines)

let test_export_roundtrip_file () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "tf_export_test/depth/x.csv" in
  Tf_experiments.Export.write_file ~path "hello\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "written" "hello" line

let test_bar_chart () =
  let chart =
    Tf_experiments.Export.bar_chart ~width:10 ~title:"t" [ ("x", 1.); ("y", 2.) ]
  in
  let lines = String.split_on_char '\n' chart in
  Alcotest.(check int) "three lines + trailing" 4 (List.length lines);
  Alcotest.(check bool) "max fills width" true
    (List.exists (fun l -> String.length l > 0 && String.contains l '#') lines);
  (* Degenerate all-zero input must not divide by zero. *)
  let flat = Tf_experiments.Export.bar_chart ~title:"z" [ ("a", 0.) ] in
  Alcotest.(check bool) "zero-safe" true (String.length flat > 0)

let test_selftest_battery () =
  let checks = Tf_experiments.Selftest.run ~quick:true () in
  Alcotest.(check bool) "non-empty" true (List.length checks >= 8);
  List.iter
    (fun (c : Tf_experiments.Selftest.check) ->
      Alcotest.(check bool) c.Tf_experiments.Selftest.name true c.Tf_experiments.Selftest.passed)
    checks

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_robustness"
    [
      ( "robustness",
        [
          quick "model validation" test_model_validation;
          quick "degenerate workloads" test_degenerate_workloads;
          quick "starved buffer refuses" test_tiny_buffer_fallback;
          quick "single-tile sequence" test_seq_one_tile;
          quick "non-power-of-two sequence" test_non_pow2_seq;
        ] );
      ( "export",
        [
          quick "csv" test_export_csv;
          quick "write_file mkdir -p" test_export_roundtrip_file;
          quick "bar chart" test_bar_chart;
        ] );
      ("selftest", [ Alcotest.test_case "battery passes" `Slow test_selftest_battery ]);
    ]
