(* Tests for the architecture model: PE arrays, energy tables, the full
   specification and the Table 3 presets. *)

open Tf_arch

let test_pe_array () =
  let a1 = Pe_array.one_d 256 in
  let a2 = Pe_array.two_d 16 32 in
  Alcotest.(check int) "1d pes" 256 (Pe_array.num_pes a1);
  Alcotest.(check int) "2d pes" 512 (Pe_array.num_pes a2);
  Alcotest.(check int) "1d rows" 256 (Pe_array.rows a1);
  Alcotest.(check int) "1d cols" 1 (Pe_array.cols a1);
  Alcotest.(check int) "2d rows" 16 (Pe_array.rows a2);
  Alcotest.(check int) "2d cols" 32 (Pe_array.cols a2);
  Alcotest.(check bool) "is_two_d" true (Pe_array.is_two_d a2);
  Alcotest.(check bool) "1d not two_d" false (Pe_array.is_two_d a1);
  Alcotest.check_raises "bad width" (Invalid_argument "Pe_array.one_d: width < 1") (fun () ->
      ignore (Pe_array.one_d 0));
  Alcotest.check_raises "bad dims" (Invalid_argument "Pe_array.two_d: non-positive dimension")
    (fun () -> ignore (Pe_array.two_d 4 0))

let test_energy_table () =
  let e = Energy_table.default_45nm in
  Alcotest.(check bool) "dram >> buffer" true (e.Energy_table.dram_access_pj > 10. *. e.Energy_table.buffer_access_pj);
  Alcotest.(check bool) "buffer >> regfile" true
    (e.Energy_table.buffer_access_pj > 5. *. e.Energy_table.regfile_access_pj);
  let doubled = Energy_table.scale 2. e in
  Alcotest.(check (float 1e-9)) "scaled dram" (2. *. e.Energy_table.dram_access_pj)
    doubled.Energy_table.dram_access_pj;
  Alcotest.(check (float 1e-9)) "scaled mac" (2. *. e.Energy_table.mac_pj) doubled.Energy_table.mac_pj

let mk ?vector_eff_2d ?matrix_eff_1d () =
  Arch.v ?vector_eff_2d ?matrix_eff_1d ~name:"test" ~pe_2d:(Pe_array.two_d 4 4)
    ~pe_1d:(Pe_array.one_d 8) ~buffer_bytes:1024 ~dram_bw_bytes_per_s:100. ()

let test_arch_validation () =
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "bad eff" (fun () -> mk ~vector_eff_2d:0. ());
  raises "eff above one" (fun () -> mk ~matrix_eff_1d:1.5 ());
  raises "bad buffer" (fun () ->
      Arch.v ~name:"x" ~pe_2d:(Pe_array.two_d 2 2) ~pe_1d:(Pe_array.one_d 2) ~buffer_bytes:0
        ~dram_bw_bytes_per_s:1. ())

let test_effective_pes () =
  let a = mk ~vector_eff_2d:0.25 ~matrix_eff_1d:0.5 () in
  Alcotest.(check (float 1e-9)) "2d matrix at peak" 16. (Arch.effective_pes a Arch.Pe_2d ~matrix:true);
  Alcotest.(check (float 1e-9)) "2d vector derated" 4. (Arch.effective_pes a Arch.Pe_2d ~matrix:false);
  Alcotest.(check (float 1e-9)) "1d vector at peak" 8. (Arch.effective_pes a Arch.Pe_1d ~matrix:false);
  Alcotest.(check (float 1e-9)) "1d matrix derated" 4. (Arch.effective_pes a Arch.Pe_1d ~matrix:true)

let test_conversions () =
  let a = mk () in
  Alcotest.(check int) "buffer elements" 512 (Arch.buffer_elements a);
  Alcotest.(check (float 1e-9)) "bytes to seconds" 2. (Arch.bytes_to_seconds a 200.);
  Alcotest.(check (float 1e-9)) "cycles to seconds" 3e-9 (Arch.cycles_to_seconds a 3.);
  Alcotest.(check string) "resource names" "1D/2D"
    (Arch.resource_to_string Arch.Pe_1d ^ "/" ^ Arch.resource_to_string Arch.Pe_2d)

let test_presets_table3 () =
  (* Paper Table 3. *)
  let cloud = Presets.cloud in
  Alcotest.(check int) "cloud 2D" (256 * 256) (Pe_array.num_pes cloud.Arch.pe_2d);
  Alcotest.(check int) "cloud 1D" 256 (Pe_array.num_pes cloud.Arch.pe_1d);
  Alcotest.(check int) "cloud buffer 16MB" (16 * 1024 * 1024) cloud.Arch.buffer_bytes;
  Alcotest.(check (float 1.)) "cloud bw 400GB/s" 400e9 cloud.Arch.dram_bw_bytes_per_s;
  let edge = Presets.edge in
  Alcotest.(check int) "edge 2D" (16 * 16) (Pe_array.num_pes edge.Arch.pe_2d);
  Alcotest.(check int) "edge buffer 5MB" (5 * 1024 * 1024) edge.Arch.buffer_bytes;
  Alcotest.(check (float 1.)) "edge bw 30GB/s" 30e9 edge.Arch.dram_bw_bytes_per_s;
  Alcotest.(check int) "edge_32 2D" (32 * 32) (Pe_array.num_pes Presets.edge_32.Arch.pe_2d);
  Alcotest.(check int) "edge_64 2D" (64 * 64) (Pe_array.num_pes Presets.edge_64.Arch.pe_2d);
  Alcotest.(check int) "edge_64 buffer 8MB" (8 * 1024 * 1024) Presets.edge_64.Arch.buffer_bytes;
  Alcotest.(check int) "all presets" 4 (List.length Presets.all)

let test_presets_by_name () =
  Alcotest.(check bool) "cloud found" true (Presets.by_name "cloud" <> None);
  Alcotest.(check bool) "unknown" true (Presets.by_name "tpu_v9" = None)

let test_accelergy_derivation () =
  let open Accelergy in
  let node = node_45nm in
  Alcotest.(check (float 1e-9)) "mac = add + mul" 1.5 (mac node).energy_pj;
  (* The derived table lands within a small factor of the hand table. *)
  let derived = energy_table () in
  let default = Energy_table.default_45nm in
  let close a b = a /. b < 4. && b /. a < 4. in
  Alcotest.(check bool) "buffer energy consistent" true
    (close derived.Energy_table.buffer_access_pj default.Energy_table.buffer_access_pj);
  Alcotest.(check bool) "mac energy consistent" true
    (close derived.Energy_table.mac_pj default.Energy_table.mac_pj);
  Alcotest.(check (float 1e-9)) "dram passthrough" 200. derived.Energy_table.dram_access_pj;
  (* Bigger buffers cost more per access (sqrt scaling). *)
  Alcotest.(check bool) "sqrt capacity scaling" true
    (buffer_access_pj node ~capacity_bytes:(16 * 1024 * 1024) ~row_bytes:256
    > buffer_access_pj node ~capacity_bytes:(1024 * 1024) ~row_bytes:256);
  Alcotest.(check (float 1e-9)) "4x capacity doubles row energy"
    (2. *. buffer_access_pj node ~capacity_bytes:(1024 * 1024) ~row_bytes:256)
    (buffer_access_pj node ~capacity_bytes:(4 * 1024 * 1024) ~row_bytes:256)

let test_accelergy_scaling () =
  let open Accelergy in
  let n7 = scale_to_node node_45nm ~target_nm:7 in
  Alcotest.(check int) "node recorded" 7 n7.node_nm;
  Alcotest.(check bool) "energy shrinks quadratically" true
    (Float.abs ((n7.fp_add.energy_pj /. node_45nm.fp_add.energy_pj) -. (49. /. 2025.)) < 1e-9);
  Alcotest.(check bool) "bad node rejected" true
    (try ignore (scale_to_node node_45nm ~target_nm:0); false with Invalid_argument _ -> true)

let test_accelergy_area () =
  let open Accelergy in
  let cloud_area = arch_area_mm2 node_45nm Presets.cloud in
  let edge_area = arch_area_mm2 node_45nm Presets.edge in
  Alcotest.(check bool) "cloud die is bigger" true (cloud_area > edge_area);
  (* TPU-class parts are hundreds of mm^2; edge parts tens. *)
  Alcotest.(check bool) "cloud plausible" true (cloud_area > 50. && cloud_area < 2000.);
  Alcotest.(check bool) "edge plausible" true (edge_area > 1. && edge_area < 200.)

let prop_effective_monotone =
  QCheck.Test.make ~name:"effective pes never exceed peak" ~count:100
    QCheck.(pair (float_range 0.01 1.0) (float_range 0.01 1.0))
    (fun (v2, m1) ->
      let a = mk ~vector_eff_2d:v2 ~matrix_eff_1d:m1 () in
      Arch.effective_pes a Arch.Pe_2d ~matrix:false <= 16.
      && Arch.effective_pes a Arch.Pe_1d ~matrix:true <= 8.)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_arch"
    [
      ( "arch",
        [
          quick "pe arrays" test_pe_array;
          quick "energy table" test_energy_table;
          quick "validation" test_arch_validation;
          quick "effective pes" test_effective_pes;
          quick "conversions" test_conversions;
          quick "Table 3 presets" test_presets_table3;
          quick "preset lookup" test_presets_by_name;
          quick "accelergy derivation" test_accelergy_derivation;
          quick "accelergy node scaling" test_accelergy_scaling;
          quick "accelergy area" test_accelergy_area;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_effective_monotone ]);
    ]
