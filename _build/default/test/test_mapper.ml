(* Tests for the exhaustive single-Einsum mapper. *)

module Mapper = Tf_costmodel.Mapper
module Loopnest = Tf_costmodel.Loopnest
open Tf_einsum

let r = Tensor_ref.v
let matmul = Einsum.contraction (r "Z" [ "m"; "n" ]) [ r "A" [ "m"; "k" ]; r "B" [ "k"; "n" ] ]

let arch ~buffer_elements =
  Tf_arch.Arch.v ~name:"mapper-test" ~element_bytes:2
    ~pe_2d:(Tf_arch.Pe_array.two_d 16 16) ~pe_1d:(Tf_arch.Pe_array.one_d 16)
    ~buffer_bytes:(2 * buffer_elements) ~dram_bw_bytes_per_s:1e9 ()

let extents ~m ~k ~n = Extents.of_list [ ("m", m); ("k", k); ("n", n) ]

let test_lower_bound () =
  let e = extents ~m:8 ~k:4 ~n:2 in
  (* |A| + |B| + |Z| = 32 + 8 + 16. *)
  Alcotest.(check (float 0.)) "compulsory traffic" 56. (Mapper.traffic_lower_bound e matmul)

let test_everything_fits () =
  (* With a buffer holding all operands, the optimum is the lower bound. *)
  let e = extents ~m:8 ~k:4 ~n:2 in
  match Mapper.search (arch ~buffer_elements:1024) e matmul with
  | Ok (nest, traffic, stats) ->
      Alcotest.(check (float 0.)) "optimal traffic" (Mapper.traffic_lower_bound e matmul) traffic;
      Alcotest.(check bool) "feasible candidates exist" true (stats.Mapper.feasible > 0);
      Alcotest.(check bool) "valid" true (Loopnest.validate (arch ~buffer_elements:1024) nest = Ok ())
  | Error e -> Alcotest.failf "search failed: %s" e

let test_constrained_buffer () =
  (* 64x64x64 matmul with a buffer of 2048 elements: the optimum must
     exceed the 12288-element lower bound but stay within a small factor
     (blocked matmul). *)
  let e = extents ~m:64 ~k:64 ~n:64 in
  let lower = Mapper.traffic_lower_bound e matmul in
  match Mapper.search (arch ~buffer_elements:2048) e matmul with
  | Ok (nest, traffic, _) ->
      Alcotest.(check bool) "above lower bound" true (traffic >= lower);
      Alcotest.(check bool) "within 8x of compulsory" true (traffic <= 8. *. lower);
      Alcotest.(check bool) "occupancy within budget" true
        (Loopnest.buffer_occupancy nest <= 2048.)
  | Error e -> Alcotest.failf "search failed: %s" e

let test_infeasible () =
  let e = extents ~m:64 ~k:64 ~n:64 in
  (* A buffer smaller than any single-element tile set cannot host any
     mapping: minimum occupancy is 3 elements. *)
  match Mapper.search (arch ~buffer_elements:1) e matmul with
  | Ok _ -> Alcotest.fail "expected infeasible"
  | Error _ -> ()

let test_enumeration_determinism () =
  let e = extents ~m:16 ~k:8 ~n:4 in
  let a = Mapper.enumerate e matmul and b = Mapper.enumerate e matmul in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  Alcotest.(check bool) "non-empty" true (a <> []);
  let cap = Mapper.enumerate ~max_candidates:10 e matmul in
  Alcotest.(check int) "cap respected" 10 (List.length cap)

let test_candidates_cover_dimensions () =
  let e = extents ~m:4 ~k:2 ~n:2 in
  List.iter
    (fun nest ->
      List.iter
        (fun index ->
          let covered =
            List.fold_left
              (fun acc (l : Loopnest.loop) -> if l.Loopnest.index = index then acc * l.Loopnest.extent else acc)
              1 (Loopnest.loops nest)
          in
          Alcotest.(check int) ("coverage of " ^ index) (Extents.find e index) covered)
        [ "m"; "k"; "n" ])
    (Mapper.enumerate e matmul)

(* Cross-check: the strategies' closed-form matmul recipe is within the
   mapper's optimum and the naive worst case. *)
let test_against_closed_form () =
  let m = 256 and k = 64 and n = 64 in
  let e = extents ~m ~k ~n in
  let buffer_elements = 4096 in
  match Mapper.search (arch ~buffer_elements) e matmul with
  | Ok (_, optimal, _) ->
      let lower = Mapper.traffic_lower_bound e matmul in
      Alcotest.(check bool) "mapper sits between bounds" true
        (optimal >= lower && optimal <= 4. *. lower)
  | Error e -> Alcotest.failf "search failed: %s" e

let prop_search_never_beats_lower_bound =
  QCheck.Test.make ~name:"mapper optimum respects the compulsory bound" ~count:40
    QCheck.(triple (int_range 1 32) (int_range 1 32) (int_range 1 32))
    (fun (m, k, n) ->
      let e = extents ~m ~k ~n in
      match Mapper.search (arch ~buffer_elements:512) e matmul with
      | Ok (_, traffic, _) -> traffic >= Mapper.traffic_lower_bound e matmul -. 1e-9
      | Error _ -> true)

let prop_bigger_buffer_never_worse =
  QCheck.Test.make ~name:"a bigger buffer never increases optimal traffic" ~count:25
    QCheck.(pair (int_range 4 32) (int_range 4 32))
    (fun (m, n) ->
      let e = extents ~m ~k:16 ~n in
      let best cap =
        match Mapper.search (arch ~buffer_elements:cap) e matmul with
        | Ok (_, t, _) -> t
        | Error _ -> infinity
      in
      best 4096 <= best 256 +. 1e-9)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_mapper"
    [
      ( "mapper",
        [
          quick "lower bound" test_lower_bound;
          quick "all-resident optimum" test_everything_fits;
          quick "constrained buffer" test_constrained_buffer;
          quick "infeasible" test_infeasible;
          quick "deterministic enumeration" test_enumeration_determinism;
          quick "dimension coverage" test_candidates_cover_dimensions;
          quick "against closed form" test_against_closed_form;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_search_never_beats_lower_bound; prop_bigger_buffer_never_worse ] );
    ]
