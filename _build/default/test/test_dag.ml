(* Tests for the generic DAG library: structure, traversal, topological
   orderings and the DPipe bipartition constraints. *)

module Dag = Tf_dag.Dag
module Topo = Tf_dag.Topo
module Partition = Tf_dag.Partition

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Dag.of_edges [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ] [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let chain n = Dag.of_edges (List.init n (fun i -> (i, i))) (List.init (n - 1) (fun i -> (i, i + 1)))

let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)

let test_empty () =
  Alcotest.(check int) "no nodes" 0 (Dag.node_count Dag.empty);
  Alcotest.(check int) "no edges" 0 (Dag.edge_count Dag.empty);
  Alcotest.(check bool) "acyclic" true (Dag.is_acyclic Dag.empty);
  check_ints "no sources" [] (Dag.sources Dag.empty)

let test_add_node_duplicate () =
  let g = Dag.add_node Dag.empty 1 "x" in
  Alcotest.check_raises "duplicate" (Invalid_argument "Dag.add_node: duplicate node 1") (fun () ->
      ignore (Dag.add_node g 1 "y"))

let test_add_edge_missing () =
  let g = Dag.add_node Dag.empty 1 "x" in
  Alcotest.check_raises "missing target" (Invalid_argument "Dag.add_edge: missing target 2")
    (fun () -> ignore (Dag.add_edge g 1 2));
  Alcotest.check_raises "missing source" (Invalid_argument "Dag.add_edge: missing source 5")
    (fun () -> ignore (Dag.add_edge g 5 1))

let test_structure () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Dag.node_count g);
  Alcotest.(check int) "edges" 4 (Dag.edge_count g);
  check_ints "succs 0" [ 1; 2 ] (Dag.succs g 0);
  check_ints "preds 3" [ 1; 2 ] (Dag.preds g 3);
  check_ints "sources" [ 0 ] (Dag.sources g);
  check_ints "sinks" [ 3 ] (Dag.sinks g);
  Alcotest.(check int) "in_degree 3" 2 (Dag.in_degree g 3);
  Alcotest.(check int) "out_degree 0" 2 (Dag.out_degree g 0);
  Alcotest.(check bool) "has_edge" true (Dag.has_edge g 0 1);
  Alcotest.(check bool) "no reverse edge" false (Dag.has_edge g 1 0);
  Alcotest.(check string) "payload" "c" (Dag.payload g 2)

let test_duplicate_edge_ignored () =
  let g = Dag.add_edge (Dag.add_edge (chain 2) 0 1) 0 1 in
  Alcotest.(check int) "still one edge" 1 (Dag.edge_count g)

let test_edges_sorted () =
  let g = diamond () in
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (1, 3); (2, 3) ] (Dag.edges g)

let test_reachable () =
  let g = diamond () in
  let seen = Dag.reachable_from g [ 1 ] in
  Alcotest.(check bool) "1 reaches 3" true (Hashtbl.mem seen 3);
  Alcotest.(check bool) "1 does not reach 2" false (Hashtbl.mem seen 2);
  Alcotest.(check bool) "includes seed" true (Hashtbl.mem seen 1)

let test_acyclicity () =
  Alcotest.(check bool) "diamond acyclic" true (Dag.is_acyclic (diamond ()));
  let cyclic = Dag.add_edge (chain 3) 2 0 in
  Alcotest.(check bool) "cycle detected" false (Dag.is_acyclic cyclic)

let test_weak_connectivity () =
  let g = diamond () in
  Alcotest.(check bool) "whole graph" true (Dag.weakly_connected g [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "1 and 2 disconnected" false (Dag.weakly_connected g [ 1; 2 ]);
  Alcotest.(check bool) "empty" true (Dag.weakly_connected g []);
  Alcotest.(check bool) "singleton" true (Dag.weakly_connected g [ 2 ])

let test_induced () =
  let g = Dag.induced (diamond ()) [ 0; 1; 3 ] in
  Alcotest.(check int) "nodes" 3 (Dag.node_count g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 3) ] (Dag.edges g)

let test_map () =
  let g = Dag.map String.uppercase_ascii (diamond ()) in
  Alcotest.(check string) "payload mapped" "B" (Dag.payload g 1);
  Alcotest.(check int) "structure kept" 4 (Dag.edge_count g)

(* Topological orderings -------------------------------------------- *)

let test_topo_sort () =
  check_ints "diamond" [ 0; 1; 2; 3 ] (Topo.sort (diamond ()));
  check_ints "chain" [ 0; 1; 2; 3; 4 ] (Topo.sort (chain 5))

let test_topo_sort_cycle () =
  Alcotest.check_raises "cycle" (Invalid_argument "Topo.sort: graph has a cycle") (fun () ->
      ignore (Topo.sort (Dag.add_edge (chain 3) 2 0)))

let test_topo_is_valid () =
  let g = diamond () in
  Alcotest.(check bool) "sorted order" true (Topo.is_valid g [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "other valid order" true (Topo.is_valid g [ 0; 2; 1; 3 ]);
  Alcotest.(check bool) "violates edge" false (Topo.is_valid g [ 1; 0; 2; 3 ]);
  Alcotest.(check bool) "wrong length" false (Topo.is_valid g [ 0; 1; 2 ]);
  Alcotest.(check bool) "duplicate" false (Topo.is_valid g [ 0; 1; 1; 3 ])

let test_topo_all () =
  let g = diamond () in
  let orders = Topo.all g in
  Alcotest.(check int) "two orders" 2 (List.length orders);
  List.iter (fun o -> Alcotest.(check bool) "valid" true (Topo.is_valid g o)) orders;
  check_ints "lexicographically first equals sort" (Topo.sort g) (List.hd orders)

let test_topo_all_limit () =
  (* An antichain of n nodes has n! orders; the limit truncates. *)
  let antichain = Dag.of_edges (List.init 6 (fun i -> (i, ()))) [] in
  Alcotest.(check int) "limit respected" 10 (List.length (Topo.all ~limit:10 antichain));
  Alcotest.(check int) "count_at_most" 10 (Topo.count_at_most ~limit:10 antichain)

let test_longest_path () =
  let g = diamond () in
  Alcotest.(check (float 1e-9)) "unit weights" 3. (Topo.longest_path_length g ~weight:(fun _ -> 1.));
  (* weight i = i+1: path 0-2-3 costs 1+3+4 = 8, path 0-1-3 costs 7. *)
  Alcotest.(check (float 1e-9)) "weighted" 8.
    (Topo.longest_path_length g ~weight:(fun i -> float_of_int (i + 1)))

(* Bipartitions ------------------------------------------------------ *)

let test_partition_chain () =
  (* A chain of n has exactly n-1 valid bipartitions (every prefix). *)
  let g = chain 5 in
  let parts = Partition.enumerate g in
  Alcotest.(check int) "prefix count" 4 (List.length parts);
  List.iter (fun p -> Alcotest.(check bool) "valid" true (Partition.is_valid g p)) parts

let test_partition_diamond () =
  let g = diamond () in
  let parts = Partition.enumerate g in
  List.iter (fun p -> Alcotest.(check bool) "valid" true (Partition.is_valid g p)) parts;
  (* {0} and {0,1,2} are valid; {0,1} and {0,2} leave a disconnected
     second side?  The second side {2,3} of {0,1} is weakly connected via
     2->3, so it is valid too. *)
  Alcotest.(check bool) "contains {0}" true
    (List.exists (fun p -> p.Partition.first = [ 0 ]) parts);
  Alcotest.(check bool) "contains {0;1;2}" true
    (List.exists (fun p -> p.Partition.first = [ 0; 1; 2 ]) parts)

let test_partition_constraints () =
  let g = diamond () in
  let invalid cases = List.iter (fun (label, p) ->
      Alcotest.(check bool) label false (Partition.is_valid g p)) cases in
  invalid
    [
      ("sink in first", { Partition.first = [ 0; 3 ]; second = [ 1; 2 ] });
      ("source in second", { Partition.first = [ 1 ]; second = [ 0; 2; 3 ] });
      ("not dependency complete", { Partition.first = [ 0; 3 ]; second = [ 1; 2 ] });
      ("empty first", { Partition.first = []; second = [ 0; 1; 2; 3 ] });
      ("overlapping", { Partition.first = [ 0; 1 ]; second = [ 1; 2; 3 ] });
      ("not a partition", { Partition.first = [ 0 ]; second = [ 2; 3 ] });
    ]

let test_partition_limit () =
  let g = chain 20 in
  Alcotest.(check int) "limited" 5 (List.length (Partition.enumerate ~limit:5 g))

(* Property tests ---------------------------------------------------- *)

let random_dag_gen =
  (* Random DAG on n nodes: edges only i -> j for i < j, so acyclic by
     construction. *)
  QCheck.Gen.(
    sized_size (int_range 1 10) (fun n ->
        let pairs =
          List.concat_map (fun i -> List.init (n - i - 1) (fun k -> (i, i + k + 1))) (List.init n Fun.id)
        in
        let* keep = flatten_l (List.map (fun p -> map (fun b -> (p, b)) bool) pairs) in
        let edges = List.filter_map (fun (p, b) -> if b then Some p else None) keep in
        return (Dag.of_edges (List.init n (fun i -> (i, i))) edges)))

let arbitrary_dag = QCheck.make ~print:(fun g -> Fmt.str "%a" (Dag.pp Fmt.int) g) random_dag_gen

let prop_sort_valid =
  QCheck.Test.make ~name:"topo sort is a valid order" ~count:200 arbitrary_dag (fun g ->
      Topo.is_valid g (Topo.sort g))

let prop_all_orders_valid =
  QCheck.Test.make ~name:"all enumerated orders are valid" ~count:100 arbitrary_dag (fun g ->
      List.for_all (Topo.is_valid g) (Topo.all ~limit:20 g))

let prop_random_dag_acyclic =
  QCheck.Test.make ~name:"construction is acyclic" ~count:200 arbitrary_dag Dag.is_acyclic

let prop_partitions_valid =
  QCheck.Test.make ~name:"enumerated bipartitions satisfy the constraints" ~count:100
    arbitrary_dag (fun g ->
      List.for_all (Partition.is_valid g) (Partition.enumerate ~limit:64 g))

let prop_partition_union =
  QCheck.Test.make ~name:"bipartition sides partition the node set" ~count:100 arbitrary_dag
    (fun g ->
      List.for_all
        (fun (p : Partition.t) ->
          List.sort_uniq compare (p.Partition.first @ p.Partition.second) = Dag.nodes g)
        (Partition.enumerate ~limit:64 g))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_dag"
    [
      ( "dag",
        [
          quick "empty graph" test_empty;
          quick "duplicate node rejected" test_add_node_duplicate;
          quick "edge endpoints checked" test_add_edge_missing;
          quick "structure queries" test_structure;
          quick "duplicate edges ignored" test_duplicate_edge_ignored;
          quick "edges sorted" test_edges_sorted;
          quick "reachability" test_reachable;
          quick "acyclicity" test_acyclicity;
          quick "weak connectivity" test_weak_connectivity;
          quick "induced subgraph" test_induced;
          quick "payload map" test_map;
        ] );
      ( "topo",
        [
          quick "sort" test_topo_sort;
          quick "sort rejects cycles" test_topo_sort_cycle;
          quick "is_valid" test_topo_is_valid;
          quick "all orders of diamond" test_topo_all;
          quick "enumeration limit" test_topo_all_limit;
          quick "longest path" test_longest_path;
        ] );
      ( "partition",
        [
          quick "chain prefixes" test_partition_chain;
          quick "diamond" test_partition_diamond;
          quick "constraint violations rejected" test_partition_constraints;
          quick "limit" test_partition_limit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sort_valid;
            prop_all_orders_valid;
            prop_random_dag_acyclic;
            prop_partitions_valid;
            prop_partition_union;
          ] );
    ]
