(* Tests for the Einsum textual notation: parsing, error reporting, and
   round-trips of the paper's four cascades. *)

open Tf_einsum

let op_testable = Alcotest.testable (Fmt.of_to_string Parser.op_to_string) ( = )

let test_parse_contract () =
  match Parser.op_of_string "Z[m,n] = contract(A[m,k], B[k,n])" with
  | Ok op ->
      Alcotest.(check string) "name" "Z" op.Einsum.name;
      Alcotest.(check bool) "kind" true (op.Einsum.kind = Einsum.Contraction);
      Alcotest.(check (list string)) "reduction" [ "k" ] (Einsum.reduction_dims op)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_map_and_reduce () =
  (match Parser.op_of_string "SLN[h,m0,p] = map:exp_diff(BQK[h,m0,p], RM[h,p])" with
  | Ok op -> Alcotest.(check bool) "map kind" true (op.Einsum.kind = Einsum.Map Scalar_op.Exp_diff)
  | Error e -> Alcotest.failf "map parse failed: %s" e);
  (match Parser.op_of_string "LM[h,p] = reduce:max(BQK[h,m0,p])" with
  | Ok op ->
      Alcotest.(check bool) "reduce kind" true (op.Einsum.kind = Einsum.Reduce Scalar_op.Max_reduce)
  | Error e -> Alcotest.failf "reduce parse failed: %s" e);
  match Parser.op_of_string "G = reduce:max(I[m])" with
  | Ok op -> Alcotest.(check int) "scalar output" 0 (Tensor_ref.rank op.Einsum.output)
  | Error e -> Alcotest.failf "scalar parse failed: %s" e

let test_parse_activation () =
  match Parser.op_of_string "AR[s,p] = map:gelu(FFN1B[s,p])" with
  | Ok op ->
      Alcotest.(check bool) "gelu" true
        (op.Einsum.kind = Einsum.Map (Scalar_op.Activation Scalar_op.Gelu))
  | Error e -> Alcotest.failf "activation parse failed: %s" e

let test_parse_errors () =
  let fails s = Alcotest.(check bool) s true (Result.is_error (Parser.op_of_string s)) in
  fails "no equals here";
  fails "Z[m] = frobnicate(A[m])";
  fails "Z[m] = map:unknown_op(A[m])";
  fails "Z[m] = reduce:median(A[m,k])";
  fails "Z[m] = contract(A[m,k]";
  fails "Z[m,m] = contract(A[m,k], B[k,m])";
  (* semantic validation still applies *)
  fails "Z[m] = map:add(A[m])";
  fails "Z[q] = contract(A[m], B[m])"

let test_op_roundtrip () =
  let samples =
    [
      "Z[m,n] = contract(A[m,k], B[k,n])";
      "SLN[h,m0,p] = map:exp_diff(BQK[h,m0,p], RM[h,p])";
      "G = reduce:max(I[m])";
      "AV[h,f,p] = map:div(RNV[h,f,p], RD[h,p])";
    ]
  in
  List.iter
    (fun s ->
      match Parser.op_of_string s with
      | Ok op -> Alcotest.(check string) "print . parse = id" s (Parser.op_to_string op)
      | Error e -> Alcotest.failf "roundtrip parse failed on %S: %s" s e)
    samples

let test_cascade_parse () =
  let text =
    {|cascade softmax:
# the extended-einsum softmax (paper Eq. 6-8)
G = reduce:max(I[m])
S[m] = map:exp_diff(I[m], G)

D = reduce:sum(S[m])
A[m] = map:div(S[m], D)
|}
  in
  match Parser.cascade_of_string text with
  | Ok c ->
      Alcotest.(check string) "name from header" "softmax" (Cascade.name c);
      Alcotest.(check int) "four ops" 4 (Cascade.length c);
      Alcotest.(check (list string)) "externals" [ "I" ] (Cascade.external_inputs c)
  | Error e -> Alcotest.failf "cascade parse failed: %s" e

let test_cascade_errors () =
  Alcotest.(check bool) "empty" true (Result.is_error (Parser.cascade_of_string "\n# nothing\n"));
  Alcotest.(check bool) "use before def" true
    (Result.is_error
       (Parser.cascade_of_string "Y[m] = map:copy(Z[m])\nZ[m] = map:copy(A[m])"))

let test_paper_cascades_roundtrip () =
  List.iter
    (fun cascade ->
      let text = Parser.cascade_to_string cascade in
      match Parser.cascade_of_string text with
      | Ok parsed ->
          Alcotest.(check string) "name" (Cascade.name cascade) (Cascade.name parsed);
          List.iter2
            (fun a b -> Alcotest.check op_testable "op" a b)
            (Cascade.ops cascade) (Cascade.ops parsed)
      | Error e -> Alcotest.failf "roundtrip of %s failed: %s" (Cascade.name cascade) e)
    [
      Transfusion.Cascades.qkv ();
      Transfusion.Cascades.mha ();
      Transfusion.Cascades.add_layernorm ();
      Transfusion.Cascades.ffn Scalar_op.Silu;
      Transfusion.Cascades.full_layer Scalar_op.Gelu;
    ]

let test_scalar_op_string_roundtrip () =
  List.iter
    (fun op ->
      match Scalar_op.of_string (Scalar_op.to_string op) with
      | Some op' -> Alcotest.(check bool) (Scalar_op.to_string op) true (op = op')
      | None -> Alcotest.failf "of_string failed for %s" (Scalar_op.to_string op))
    [
      Scalar_op.Add;
      Scalar_op.Exp_diff;
      Scalar_op.Rsqrt;
      Scalar_op.Activation Scalar_op.Silu;
      Scalar_op.Activation Scalar_op.Relu;
    ];
  Alcotest.(check bool) "unknown scalar" true (Scalar_op.of_string "tanhish" = None);
  Alcotest.(check bool) "reduce roundtrip" true
    (Scalar_op.reduce_of_string "max" = Some Scalar_op.Max_reduce);
  Alcotest.(check bool) "unknown reduce" true (Scalar_op.reduce_of_string "avg" = None)

let prop_parsed_interpretable =
  (* Any parsed cascade built from a random chain is interpretable and
     agrees with interpreting the original. *)
  QCheck.Test.make ~name:"parse of printed chain interprets identically" ~count:25
    QCheck.(pair (int_range 1 6) (int_range 0 1000))
    (fun (n, seed) ->
      let ops =
        List.init n (fun i ->
            let src = if i = 0 then "X" else Printf.sprintf "T%d" (i - 1) in
            (* copy avoids exp-chain overflow to infinity, which would
               make |a - b| a NaN even for identical results *)
            Einsum.map Scalar_op.Copy
              (Tensor_ref.v (Printf.sprintf "T%d" i) [ "m" ])
              [ Tensor_ref.v src [ "m" ] ])
      in
      let cascade = Cascade.v ops in
      match Parser.cascade_of_string (Parser.cascade_to_string cascade) with
      | Error _ -> false
      | Ok parsed ->
          let extents = Extents.of_list [ ("m", 4) ] in
          let state = Random.State.make [| seed |] in
          let x = Tf_tensor.Nd.random state [| 4 |] in
          let run c = Tf_tensor.Cascade_interp.run_results extents c ~inputs:[ ("X", x) ] in
          List.for_all2
            (fun (na, va) (nb, vb) -> na = nb && Tf_tensor.Nd.max_abs_diff va vb = 0.)
            (run cascade) (run parsed))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_einsum_parser"
    [
      ( "parser",
        [
          quick "contract" test_parse_contract;
          quick "map and reduce" test_parse_map_and_reduce;
          quick "activations" test_parse_activation;
          quick "errors" test_parse_errors;
          quick "op roundtrip" test_op_roundtrip;
          quick "cascade with header/comments" test_cascade_parse;
          quick "cascade errors" test_cascade_errors;
          quick "paper cascades roundtrip" test_paper_cascades_roundtrip;
          quick "scalar-op strings" test_scalar_op_string_roundtrip;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_parsed_interpretable ]);
    ]
