(* Tests for the numeric substrate: Nd arrays, reference ops, the two
   attention dataflows, the fused-tiled transformer layer and the cascade
   interpreter. *)

module Nd = Tf_tensor.Nd
module Ops = Tf_tensor.Ops
module Attention = Tf_tensor.Attention
module Transformer = Tf_tensor.Transformer
module Interp = Tf_tensor.Cascade_interp
open Tf_einsum

let rng () = Random.State.make [| 1234 |]

(* Nd ----------------------------------------------------------------- *)

let test_nd_basics () =
  let t = Nd.create [| 2; 3 |] 1.5 in
  Alcotest.(check int) "numel" 6 (Nd.numel t);
  Alcotest.(check int) "rank" 2 (Nd.rank t);
  Alcotest.(check (float 0.)) "fill value" 1.5 (Nd.get t [| 1; 2 |]);
  Nd.set t [| 0; 1 |] 9.;
  Alcotest.(check (float 0.)) "set/get" 9. (Nd.get t [| 0; 1 |]);
  let s = Nd.scalar 4. in
  Alcotest.(check int) "scalar rank" 0 (Nd.rank s);
  Alcotest.(check (float 0.)) "scalar value" 4. (Nd.get s [||])

let test_nd_bounds () =
  let t = Nd.create [| 2; 2 |] 0. in
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "rank mismatch" (fun () -> Nd.get t [| 0 |]);
  raises "out of bounds" (fun () -> Nd.get t [| 0; 5 |]);
  raises "negative" (fun () -> Nd.get t [| -1; 0 |])

let test_nd_init_order () =
  let t = Nd.init [| 2; 3 |] (fun idx -> float_of_int ((idx.(0) * 3) + idx.(1))) in
  Alcotest.(check (list (float 0.))) "row-major" [ 0.; 1.; 2.; 3.; 4.; 5. ] (Nd.to_list t)

let test_nd_iter_indices () =
  let count = ref 0 and last = ref [||] in
  Nd.iter_indices [| 2; 2; 2 |] (fun idx ->
      incr count;
      last := Array.copy idx);
  Alcotest.(check int) "visits all" 8 !count;
  Alcotest.(check (array int)) "last index" [| 1; 1; 1 |] !last;
  let none = ref 0 in
  Nd.iter_indices [| 2; 0 |] (fun _ -> incr none);
  Alcotest.(check int) "empty volume" 0 !none

let test_nd_of_list () =
  let t = Nd.of_list [| 2; 2 |] [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check (float 0.)) "corner" 4. (Nd.get t [| 1; 1 |]);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Nd.of_list: wrong element count")
    (fun () -> ignore (Nd.of_list [| 2 |] [ 1.; 2.; 3. ]))

let test_nd_maps () =
  let a = Nd.of_list [| 2 |] [ 1.; 2. ] and b = Nd.of_list [| 2 |] [ 10.; 20. ] in
  Alcotest.(check (list (float 0.))) "map" [ 2.; 4. ] (Nd.to_list (Nd.map (fun x -> 2. *. x) a));
  Alcotest.(check (list (float 0.))) "map2" [ 11.; 22. ] (Nd.to_list (Nd.map2 ( +. ) a b));
  Alcotest.(check (float 0.)) "fold" 3. (Nd.fold ( +. ) 0. a);
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Nd.map2: shape mismatch") (fun () ->
      ignore (Nd.map2 ( +. ) a (Nd.create [| 3 |] 0.)))

let test_nd_compare () =
  let a = Nd.of_list [| 2 |] [ 1.; 2. ] in
  let b = Nd.of_list [| 2 |] [ 1.; 2.0000001 ] in
  Alcotest.(check bool) "approx equal" true (Nd.equal_approx ~tol:1e-6 a b);
  Alcotest.(check bool) "not equal strict" false (Nd.equal_approx ~tol:1e-9 a b);
  Alcotest.(check (float 1e-9)) "max abs diff" 1e-7 (Nd.max_abs_diff a b)

(* Ops ---------------------------------------------------------------- *)

let test_matmul () =
  let a = Nd.of_list [| 2; 2 |] [ 1.; 2.; 3.; 4. ] in
  let b = Nd.of_list [| 2; 2 |] [ 5.; 6.; 7.; 8. ] in
  Alcotest.(check (list (float 1e-12))) "known product" [ 19.; 22.; 43.; 50. ]
    (Nd.to_list (Ops.matmul a b));
  let id = Nd.init [| 2; 2 |] (fun i -> if i.(0) = i.(1) then 1. else 0.) in
  Alcotest.(check bool) "identity" true (Nd.equal_approx a (Ops.matmul a id));
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Ops.matmul: inner dims 2 vs 3") (fun () ->
      ignore (Ops.matmul a (Nd.create [| 3; 2 |] 0.)))

let test_transpose () =
  let a = Nd.of_list [| 2; 3 |] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  Alcotest.(check (list (float 0.))) "transpose" [ 1.; 4.; 2.; 5.; 3.; 6. ]
    (Nd.to_list (Ops.transpose a))

let test_softmax () =
  let m = Nd.of_list [| 1; 3 |] [ 0.; 0.; 0. ] in
  let s = Ops.softmax_rows m in
  Alcotest.(check (float 1e-12)) "uniform" (1. /. 3.) (Nd.get s [| 0; 0 |]);
  let big = Nd.of_list [| 1; 2 |] [ 1000.; 0. ] in
  let sb = Ops.softmax_rows big in
  Alcotest.(check bool) "numerically stable" true (Float.is_finite (Nd.get sb [| 0; 0 |]));
  Alcotest.(check (float 1e-12)) "winner takes all" 1. (Nd.get sb [| 0; 0 |]);
  let random = Nd.random (rng ()) [| 4; 7 |] in
  let rows = Ops.softmax_rows random in
  for i = 0 to 3 do
    let total = ref 0. in
    for j = 0 to 6 do
      total := !total +. Nd.get rows [| i; j |]
    done;
    Alcotest.(check (float 1e-9)) "rows sum to one" 1. !total
  done

let test_layernorm () =
  let m = Nd.random (rng ()) [| 5; 16 |] in
  let n = Ops.layernorm_rows m in
  let mu = Ops.mean_rows n and var = Ops.variance_rows n in
  for i = 0 to 4 do
    Alcotest.(check (float 1e-9)) "zero mean" 0. (Nd.get mu [| i |]);
    Alcotest.(check (float 1e-6)) "unit variance" 1. (Nd.get var [| i |])
  done

let test_mean_variance () =
  let m = Nd.of_list [| 1; 4 |] [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Nd.get (Ops.mean_rows m) [| 0 |]);
  Alcotest.(check (float 1e-12)) "population variance" 1.25 (Nd.get (Ops.variance_rows m) [| 0 |])

let test_bias_and_activation () =
  let m = Nd.of_list [| 2; 2 |] [ 1.; -2.; 3.; -4. ] in
  let bias = Nd.of_list [| 2 |] [ 10.; 20. ] in
  Alcotest.(check (list (float 0.))) "bias" [ 11.; 18.; 13.; 16. ]
    (Nd.to_list (Ops.add_row_bias m bias));
  Alcotest.(check (list (float 0.))) "relu" [ 1.; 0.; 3.; 0. ]
    (Nd.to_list (Ops.activation Scalar_op.Relu m))

(* Attention ----------------------------------------------------------- *)

let attention_case ~p ~m ~e ~f ~m0 seed =
  let state = Random.State.make [| seed |] in
  let q = Nd.random state [| p; e |] in
  let k = Nd.random state [| m; e |] in
  let v = Nd.random state [| m; f |] in
  let reference = Attention.reference ~q ~k ~v () in
  let streaming = Attention.streaming_one_pass ~m0 ~q ~k ~v () in
  Alcotest.(check bool)
    (Printf.sprintf "streaming == reference (p=%d m=%d m0=%d)" p m m0)
    true
    (Nd.max_abs_diff reference streaming < 1e-10)

let test_attention_agreement () =
  attention_case ~p:4 ~m:8 ~e:5 ~f:6 ~m0:2 1;
  attention_case ~p:1 ~m:16 ~e:8 ~f:8 ~m0:16 2;
  attention_case ~p:7 ~m:12 ~e:3 ~f:4 ~m0:3 3;
  attention_case ~p:2 ~m:6 ~e:2 ~f:2 ~m0:1 4

let test_attention_scale () =
  let state = rng () in
  let q = Nd.random state [| 3; 4 |] and k = Nd.random state [| 5; 4 |] in
  let v = Nd.random state [| 5; 2 |] in
  let scale = 1. /. sqrt 4. in
  let a = Attention.reference ~scale ~q ~k ~v () in
  let b = Attention.streaming_one_pass ~scale ~m0:5 ~q ~k ~v () in
  Alcotest.(check bool) "scaled agreement" true (Nd.max_abs_diff a b < 1e-10)

let test_attention_errors () =
  let state = rng () in
  let q = Nd.random state [| 3; 4 |] and k = Nd.random state [| 6; 4 |] in
  let v = Nd.random state [| 6; 2 |] in
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "m0 must divide" (fun () -> Attention.streaming_one_pass ~m0:4 ~q ~k ~v ());
  raises "shape mismatch" (fun () ->
      Attention.reference ~q ~k:(Nd.random state [| 6; 3 |]) ~v ())

let test_causal_attention () =
  let state = rng () in
  let p = 8 in
  let q = Nd.random state [| p; 4 |] and k = Nd.random state [| p; 4 |] in
  let v = Nd.random state [| p; 3 |] in
  let reference = Attention.reference ~causal:true ~q ~k ~v () in
  List.iter
    (fun m0 ->
      let streaming = Attention.streaming_one_pass ~causal:true ~m0 ~q ~k ~v () in
      Alcotest.(check bool)
        (Printf.sprintf "causal streaming == causal reference (m0=%d)" m0)
        true
        (Nd.max_abs_diff reference streaming < 1e-10))
    [ 1; 2; 4; 8 ];
  (* The first token attends only to itself: output row 0 equals v row 0. *)
  let first_out = Nd.init [| 3 |] (fun i -> Nd.get reference [| 0; i.(0) |]) in
  let first_v = Nd.init [| 3 |] (fun i -> Nd.get v [| 0; i.(0) |]) in
  Alcotest.(check bool) "first token sees only itself" true
    (Nd.max_abs_diff first_out first_v < 1e-12);
  (* Causal needs square attention. *)
  Alcotest.(check bool) "causal requires M = P" true
    (try
       ignore (Attention.reference ~causal:true ~q ~k:(Nd.random state [| 12; 4 |])
                 ~v:(Nd.random state [| 12; 3 |]) ());
       false
     with Invalid_argument _ -> true)

let test_decoder_layer () =
  let state = rng () in
  let d_model = 16 and heads = 2 and ffn_hidden = 24 in
  let w = Transformer.random_weights state ~d_model ~ffn_hidden in
  let x = Nd.random state [| 8; d_model |] in
  let encoder = Nd.random state [| 12; d_model |] in
  let reference =
    Transformer.reference_decoder ~heads ~activation:Scalar_op.Gelu w ~encoder x
  in
  let fused =
    Transformer.fused_tiled_decoder ~heads ~activation:Scalar_op.Gelu ~tile_p:4 ~tile_m0:4
      ~tile_s:8 w ~encoder x
  in
  Alcotest.(check bool) "fused decoder == reference decoder" true
    (Nd.max_abs_diff reference fused < 1e-9);
  Alcotest.(check (array int)) "decoder output shape" [| 8; d_model |] (Nd.shape fused)

let prop_causal_attention =
  QCheck.Test.make ~name:"causal streaming == causal reference" ~count:40
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (tiles, seed) ->
      let m0 = 2 in
      let p = tiles * m0 in
      let state = Random.State.make [| seed; p |] in
      let q = Nd.random state [| p; 3 |] and k = Nd.random state [| p; 3 |] in
      let v = Nd.random state [| p; 2 |] in
      let a = Attention.reference ~causal:true ~q ~k ~v () in
      let b = Attention.streaming_one_pass ~causal:true ~m0 ~q ~k ~v () in
      Nd.max_abs_diff a b < 1e-9)

let prop_attention =
  QCheck.Test.make ~name:"streaming 1-pass attention == reference" ~count:60
    QCheck.(quad (int_range 1 6) (int_range 1 4) (int_range 1 5) (int_range 0 1000))
    (fun (p, tiles, e, seed) ->
      let m0 = 1 + (seed mod 3) in
      let m = tiles * m0 in
      let state = Random.State.make [| seed; p; m |] in
      let q = Nd.random state [| p; e |] in
      let k = Nd.random state [| m; e |] in
      let v = Nd.random state [| m; e + 1 |] in
      let a = Attention.reference ~q ~k ~v () in
      let b = Attention.streaming_one_pass ~m0 ~q ~k ~v () in
      Nd.max_abs_diff a b < 1e-9)

(* Transformer layer ---------------------------------------------------- *)

let test_fused_layer () =
  let state = rng () in
  let d_model = 24 and heads = 3 and ffn_hidden = 40 and p = 12 in
  let w = Transformer.random_weights state ~d_model ~ffn_hidden in
  let x = Nd.random state [| p; d_model |] in
  let reference = Transformer.reference ~heads ~activation:Scalar_op.Gelu w x in
  List.iter
    (fun (tile_p, tile_m0, tile_s) ->
      let fused =
        Transformer.fused_tiled ~heads ~activation:Scalar_op.Gelu ~tile_p ~tile_m0 ~tile_s w x
      in
      Alcotest.(check bool)
        (Printf.sprintf "tiles (%d,%d,%d)" tile_p tile_m0 tile_s)
        true
        (Nd.max_abs_diff reference fused < 1e-9))
    [ (12, 12, 40); (4, 3, 8); (6, 2, 20); (1, 1, 1) ]

let test_fused_layer_errors () =
  let state = rng () in
  let w = Transformer.random_weights state ~d_model:8 ~ffn_hidden:8 in
  let x = Nd.random state [| 8; 8 |] in
  Alcotest.(check bool) "bad tile rejected" true
    (try
       ignore (Transformer.fused_tiled ~heads:2 ~activation:Scalar_op.Relu ~tile_p:3 ~tile_m0:2 ~tile_s:4 w x);
       false
     with Invalid_argument _ -> true)

let prop_fused_layer =
  QCheck.Test.make ~name:"fused-tiled layer == reference layer" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 1 3))
    (fun (seed, heads_pow) ->
      let heads = 1 lsl heads_pow in
      let e = 4 in
      let d_model = heads * e in
      let p = 8 and ffn_hidden = 12 in
      let state = Random.State.make [| seed |] in
      let w = Transformer.random_weights state ~d_model ~ffn_hidden in
      let x = Nd.random state [| p; d_model |] in
      let reference = Transformer.reference ~heads ~activation:Scalar_op.Silu w x in
      let fused =
        Transformer.fused_tiled ~heads ~activation:Scalar_op.Silu ~tile_p:4 ~tile_m0:2 ~tile_s:6 w x
      in
      Nd.max_abs_diff reference fused < 1e-9)

(* Cascade interpreter --------------------------------------------------- *)

let r = Tensor_ref.v

let test_interp_matmul () =
  let op = Einsum.contraction (r "Z" [ "m"; "n" ]) [ r "A" [ "m"; "k" ]; r "B" [ "k"; "n" ] ] in
  let c = Cascade.v [ op ] in
  let extents = Extents.of_list [ ("m", 3); ("k", 4); ("n", 2) ] in
  let state = rng () in
  let a = Nd.random state [| 3; 4 |] and b = Nd.random state [| 4; 2 |] in
  let outputs = Interp.run extents c ~inputs:[ ("A", a); ("B", b) ] in
  Alcotest.(check bool) "matches Ops.matmul" true
    (Nd.max_abs_diff (List.assoc "Z" outputs) (Ops.matmul a b) < 1e-12)

let test_interp_softmax () =
  (* The extended-einsum softmax (paper Eq. 6-8, with the stable shift). *)
  let c =
    Cascade.v
      [
        Einsum.reduce Scalar_op.Max_reduce (Tensor_ref.scalar "G") (r "I" [ "m" ]);
        Einsum.map Scalar_op.Exp_diff (r "S" [ "m" ]) [ r "I" [ "m" ]; Tensor_ref.scalar "G" ];
        Einsum.reduce Scalar_op.Sum (Tensor_ref.scalar "D") (r "S" [ "m" ]);
        Einsum.map Scalar_op.Div (r "A" [ "m" ]) [ r "S" [ "m" ]; Tensor_ref.scalar "D" ];
      ]
  in
  let extents = Extents.of_list [ ("m", 6) ] in
  let i = Nd.random (rng ()) ~lo:(-3.) ~hi:3. [| 6 |] in
  let out = List.assoc "A" (Interp.run_results extents c ~inputs:[ ("I", i) ]) in
  let expected = Ops.softmax_rows (Nd.init [| 1; 6 |] (fun idx -> Nd.get i [| idx.(1) |])) in
  for j = 0 to 5 do
    Alcotest.(check (float 1e-12)) "softmax element" (Nd.get expected [| 0; j |]) (Nd.get out [| j |])
  done

let test_interp_broadcast_reduce () =
  let c =
    Cascade.v
      [
        Einsum.reduce Scalar_op.Sum (r "S" [ "m" ]) (r "A" [ "m"; "k" ]);
        Einsum.map Scalar_op.Mul (r "Z" [ "m"; "k" ]) [ r "A" [ "m"; "k" ]; r "S" [ "m" ] ];
      ]
  in
  let extents = Extents.of_list [ ("m", 2); ("k", 3) ] in
  let a = Nd.of_list [| 2; 3 |] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let z = List.assoc "Z" (Interp.run extents c ~inputs:[ ("A", a) ]) in
  (* row sums 6 and 15, broadcast-multiplied back. *)
  Alcotest.(check (list (float 1e-12))) "broadcast" [ 6.; 12.; 18.; 60.; 75.; 90. ] (Nd.to_list z)

let test_interp_errors () =
  let c = Cascade.v [ Einsum.map Scalar_op.Copy (r "Y" [ "m" ]) [ r "X" [ "m" ] ] ] in
  let extents = Extents.of_list [ ("m", 2) ] in
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "missing input" (fun () -> Interp.run extents c ~inputs:[]);
  raises "shape mismatch" (fun () ->
      Interp.run extents c ~inputs:[ ("X", Nd.create [| 5 |] 0.) ]);
  raises "unbound index" (fun () -> Interp.run Extents.empty c ~inputs:[ ("X", Nd.create [| 2 |] 0.) ])

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_tensor"
    [
      ( "nd",
        [
          quick "basics" test_nd_basics;
          quick "bounds" test_nd_bounds;
          quick "init order" test_nd_init_order;
          quick "iter_indices" test_nd_iter_indices;
          quick "of_list" test_nd_of_list;
          quick "maps and folds" test_nd_maps;
          quick "comparison" test_nd_compare;
        ] );
      ( "ops",
        [
          quick "matmul" test_matmul;
          quick "transpose" test_transpose;
          quick "softmax" test_softmax;
          quick "layernorm" test_layernorm;
          quick "mean/variance" test_mean_variance;
          quick "bias and activation" test_bias_and_activation;
        ] );
      ( "attention",
        [
          quick "streaming == reference" test_attention_agreement;
          quick "scaled" test_attention_scale;
          quick "causal (decoder)" test_causal_attention;
          quick "errors" test_attention_errors;
        ] );
      ( "transformer",
        [
          quick "fused-tiled == reference" test_fused_layer;
          quick "decoder layer" test_decoder_layer;
          quick "tile validation" test_fused_layer_errors;
        ] );
      ( "interp",
        [
          quick "matmul" test_interp_matmul;
          quick "softmax cascade" test_interp_softmax;
          quick "broadcast and reduce" test_interp_broadcast_reduce;
          quick "errors" test_interp_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_attention; prop_causal_attention; prop_fused_layer ] );
    ]
