(* Tests for the Timeloop-style loop-nest analysis: footprints, the reuse
   rule, DRAM traffic of classic matmul dataflows, occupancy and
   validation — plus a consistency cross-check against the coarser
   traffic recipe used by the strategies. *)

module Loopnest = Tf_costmodel.Loopnest
open Tf_einsum

let r = Tensor_ref.v
let a_ref = r "A" [ "m"; "k" ]
let b_ref = r "B" [ "k"; "n" ]
let c_ref = r "Z" [ "m"; "n" ]
let matmul = Einsum.contraction c_ref [ a_ref; b_ref ]

let loop index extent level = { Loopnest.index; extent; level }

(* A weight-stationary mapping of a 64x32x16 matmul: the B (weight) tile
   [k x n] stays in the buffer while m streams. *)
let weight_stationary =
  Loopnest.v
    ~extents:(Extents.of_list [ ("m", 64); ("k", 32); ("n", 16) ])
    matmul
    [
      loop "m" 8 Loopnest.Dram;
      (* tile below: m=8, full k, full n *)
      loop "m" 8 Loopnest.Buffer;
      loop "k" 32 Loopnest.Buffer;
      loop "n" 16 Loopnest.Spatial;
    ]

let test_validation () =
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "bad extent" (fun () -> Loopnest.v matmul [ loop "m" 0 Loopnest.Dram ]);
  raises "bad level order" (fun () ->
      Loopnest.v matmul [ loop "m" 2 Loopnest.Buffer; loop "k" 2 Loopnest.Dram ]);
  raises "unknown index" (fun () -> Loopnest.v matmul [ loop "zz" 2 Loopnest.Dram ]);
  raises "coverage" (fun () ->
      Loopnest.v
        ~extents:(Extents.of_list [ ("m", 64); ("k", 32); ("n", 16) ])
        matmul
        [ loop "m" 4 Loopnest.Dram; loop "k" 32 Loopnest.Buffer; loop "n" 16 Loopnest.Buffer ])

let test_footprints () =
  let t = weight_stationary in
  (* Buffer tiles: A is m(8) x k(32) = 256, B is k(32) x n(16) = 512,
     Z is m(8) x n(16) = 128. *)
  Alcotest.(check (float 0.)) "A tile" 256. (Loopnest.footprint t ~tensor:a_ref ~below:Loopnest.Buffer);
  Alcotest.(check (float 0.)) "B tile" 512. (Loopnest.footprint t ~tensor:b_ref ~below:Loopnest.Buffer);
  Alcotest.(check (float 0.)) "Z tile" 128. (Loopnest.footprint t ~tensor:c_ref ~below:Loopnest.Buffer);
  Alcotest.(check (float 0.)) "occupancy" 896. (Loopnest.buffer_occupancy t)

let test_weight_stationary_traffic () =
  let t = weight_stationary in
  (* A: 8 distinct tiles of 256 -> 2048 = |A| read once. *)
  Alcotest.(check (float 0.)) "A read once" 2048. (Loopnest.reads t ~tensor:a_ref ~into:Loopnest.Buffer);
  (* B: the m loop above is irrelevant to B -> full reuse, read once. *)
  Alcotest.(check (float 0.)) "B read once" 512. (Loopnest.reads t ~tensor:b_ref ~into:Loopnest.Buffer);
  (* Z: 8 distinct tiles, no reduction loop at DRAM -> written once. *)
  Alcotest.(check (float 0.)) "Z written once" 1024. (Loopnest.writes t ~into:Loopnest.Buffer);
  Alcotest.(check (float 0.)) "total" (2048. +. 512. +. 1024.) (Loopnest.dram_traffic t)

let test_streaming_weights_traffic () =
  (* The opposite loop order: n at DRAM above m — the A tile is re-read
     per n tile. *)
  let t =
    Loopnest.v matmul
      [
        loop "n" 4 Loopnest.Dram;
        loop "m" 8 Loopnest.Dram;
        loop "m" 8 Loopnest.Buffer;
        loop "k" 32 Loopnest.Buffer;
        loop "n" 4 Loopnest.Buffer;
      ]
  in
  (* A tile = 8 x 32 = 256; m loop relevant (8 tiles), n loop above also
     multiplies once a relevant loop was seen -> 4 x 8 x 256 = |A| x 4. *)
  Alcotest.(check (float 0.)) "A re-read per n tile" (4. *. 8. *. 256.)
    (Loopnest.reads t ~tensor:a_ref ~into:Loopnest.Buffer);
  (* B tile = 32 x 4 = 128; m (inner, irrelevant to B) reuses, n above is
     relevant -> 4 x 128 = |B| once. *)
  Alcotest.(check (float 0.)) "B read once" 512. (Loopnest.reads t ~tensor:b_ref ~into:Loopnest.Buffer)

let test_reduction_spill () =
  (* Splitting the reduction at DRAM forces output read-modify-write. *)
  let t =
    Loopnest.v matmul
      [
        loop "k" 4 Loopnest.Dram;
        loop "m" 64 Loopnest.Buffer;
        loop "k" 8 Loopnest.Buffer;
        loop "n" 16 Loopnest.Buffer;
      ]
  in
  (* Z tile = full 64 x 16 = 1024; the k loop above is irrelevant to Z,
     and it is the trailing run -> the tile stays resident, written once. *)
  Alcotest.(check (float 0.)) "accumulate in buffer" 1024. (Loopnest.writes t ~into:Loopnest.Buffer);
  (* But with an output-relevant loop outside the reduction loop, each
     revisit spills. *)
  let spilling =
    Loopnest.v matmul
      [
        loop "m" 4 Loopnest.Dram;
        loop "k" 4 Loopnest.Dram;
        loop "m" 16 Loopnest.Buffer;
        loop "k" 8 Loopnest.Buffer;
        loop "n" 16 Loopnest.Buffer;
      ]
  in
  ignore spilling;
  let inverted =
    Loopnest.v matmul
      [
        loop "k" 4 Loopnest.Dram;
        loop "m" 4 Loopnest.Dram;
        loop "m" 16 Loopnest.Buffer;
        loop "k" 8 Loopnest.Buffer;
        loop "n" 16 Loopnest.Buffer;
      ]
  in
  (* Z tile = 16 x 16 = 256; m relevant (4 tiles) below the k split: each
     k iteration revisits all 4 tiles -> writes 4 x 4 x 256; reads back
     (writes - distinct) = (16 - 4) x 256. *)
  Alcotest.(check (float 0.)) "spilled writes" (16. *. 256.)
    (Loopnest.writes inverted ~into:Loopnest.Buffer);
  let total = Loopnest.dram_traffic inverted in
  let a_reads = Loopnest.reads inverted ~tensor:a_ref ~into:Loopnest.Buffer in
  let b_reads = Loopnest.reads inverted ~tensor:b_ref ~into:Loopnest.Buffer in
  Alcotest.(check (float 0.)) "rmw accounted" (a_reads +. b_reads +. (16. *. 256.) +. (12. *. 256.)) total

let test_spatial_and_validate () =
  let t = weight_stationary in
  Alcotest.(check int) "spatial lanes" 16 (Loopnest.spatial_lanes t);
  (match Loopnest.validate Tf_arch.Presets.cloud t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid: %s" e);
  let tiny =
    Tf_arch.Arch.v ~name:"tiny" ~pe_2d:(Tf_arch.Pe_array.two_d 2 2)
      ~pe_1d:(Tf_arch.Pe_array.one_d 2) ~buffer_bytes:64 ~dram_bw_bytes_per_s:1. ()
  in
  match Loopnest.validate tiny t with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error _ -> ()

(* Cross-check: the blocked-matmul recipe the strategies use (weight
   slices resident, input re-streamed per slice) matches the loop-nest
   analysis of the corresponding mapping. *)
let test_crosscheck_with_strategy_recipe () =
  let m = 4096 and k = 64 and n = 64 in
  let slices = 4 in
  let t =
    Loopnest.v
      ~extents:(Extents.of_list [ ("m", m); ("k", k); ("n", n) ])
      matmul
      [
        loop "n" slices Loopnest.Dram;
        loop "m" m Loopnest.Dram;
        (* the buffer holds one weight slice and one input row at a time *)
        loop "k" k Loopnest.Buffer;
        loop "n" (n / slices) Loopnest.Buffer;
      ]
  in
  let weight = float_of_int (k * n) in
  let input = float_of_int (m * k) in
  let expected_reads = weight +. (float_of_int slices *. input) in
  let reads =
    Loopnest.reads t ~tensor:a_ref ~into:Loopnest.Buffer
    +. Loopnest.reads t ~tensor:b_ref ~into:Loopnest.Buffer
  in
  Alcotest.(check (float 0.)) "weight-resident recipe" expected_reads reads

let prop_reads_at_least_once =
  QCheck.Test.make ~name:"every input is read at least once in full" ~count:100
    QCheck.(quad (int_range 1 8) (int_range 1 8) (int_range 1 8) (int_range 1 8))
    (fun (md, mb, kb, nb) ->
      let t =
        Loopnest.v matmul
          [
            loop "m" md Loopnest.Dram;
            loop "m" mb Loopnest.Buffer;
            loop "k" kb Loopnest.Buffer;
            loop "n" nb Loopnest.Buffer;
          ]
      in
      Loopnest.reads t ~tensor:a_ref ~into:Loopnest.Buffer >= float_of_int (md * mb * kb)
      && Loopnest.reads t ~tensor:b_ref ~into:Loopnest.Buffer >= float_of_int (kb * nb))

let prop_refetch_monotone =
  QCheck.Test.make ~name:"adding an outer relevant loop multiplies traffic" ~count:100
    QCheck.(pair (int_range 2 8) (int_range 1 8))
    (fun (outer, inner) ->
      let base =
        Loopnest.v matmul
          [ loop "m" inner Loopnest.Buffer; loop "k" 4 Loopnest.Buffer; loop "n" 4 Loopnest.Buffer ]
      in
      let extended =
        Loopnest.v matmul
          [
            loop "m" outer Loopnest.Dram;
            loop "m" inner Loopnest.Buffer;
            loop "k" 4 Loopnest.Buffer;
            loop "n" 4 Loopnest.Buffer;
          ]
      in
      Loopnest.reads extended ~tensor:a_ref ~into:Loopnest.Buffer
      = float_of_int outer *. Loopnest.reads base ~tensor:a_ref ~into:Loopnest.Buffer)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tf_loopnest"
    [
      ( "loopnest",
        [
          quick "validation" test_validation;
          quick "footprints and occupancy" test_footprints;
          quick "weight-stationary traffic" test_weight_stationary_traffic;
          quick "streaming-weights traffic" test_streaming_weights_traffic;
          quick "reduction spill" test_reduction_spill;
          quick "spatial lanes and validate" test_spatial_and_validate;
          quick "cross-check with strategy recipe" test_crosscheck_with_strategy_recipe;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_reads_at_least_once; prop_refetch_monotone ] );
    ]
