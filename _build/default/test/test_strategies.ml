(* Integration tests of the five schedulers through the shared cost model:
   the orderings the paper's Figure 8 rests on, energy behaviour, traffic
   signatures and attribution plumbing. *)

module Strategies = Transfusion.Strategies
module Speedup = Transfusion.Speedup
module Latency = Tf_costmodel.Latency
module Energy = Tf_costmodel.Energy
module Traffic = Tf_costmodel.Traffic
module Phase = Tf_costmodel.Phase
open Tf_arch
open Tf_workloads

(* Small-but-real evaluation points; memoise locally since several tests
   share them. *)
let cache = Hashtbl.create 32

let eval arch w strategy =
  let key = (arch.Arch.name, w.Workload.seq_len, w.Workload.model.Model.name, strategy) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let r = Strategies.evaluate ~tileseek_iterations:60 arch w strategy in
      Hashtbl.add cache key r;
      r

let bert_4k = Workload.v Tf_workloads.Presets.bert ~seq_len:4096
let bert_64k = Workload.v Tf_workloads.Presets.bert ~seq_len:65536
let llama3_16k = Workload.v Tf_workloads.Presets.llama3 ~seq_len:16384

let total r = r.Strategies.latency.Latency.total_s

let test_names () =
  Alcotest.(check int) "five strategies" 5 (List.length Strategies.all);
  List.iter
    (fun s ->
      match Strategies.of_name (Strategies.name s) with
      | Some s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | None -> Alcotest.fail "name roundtrip failed")
    Strategies.all;
  Alcotest.(check bool) "unknown name" true (Strategies.of_name "magic" = None)

let test_ordering () =
  (* The qualitative claim of Figure 8: TransFusion >= FuseMax+LF >=
     FuseMax >= FLAT >= Unfused (1% tolerance for scheduling noise). *)
  List.iter
    (fun (arch, w) ->
      let t s = total (eval arch w s) in
      let le a b label = Alcotest.(check bool) label true (t a <= t b *. 1.01) in
      le Strategies.Transfusion Strategies.Fusemax_layerfuse
        (Printf.sprintf "%s: TF <= LF" arch.Arch.name);
      le Strategies.Transfusion Strategies.Fusemax (Printf.sprintf "%s: TF <= FM" arch.Arch.name);
      le Strategies.Fusemax Strategies.Flat (Printf.sprintf "%s: FM <= FLAT" arch.Arch.name);
      le Strategies.Flat Strategies.Unfused (Printf.sprintf "%s: FLAT <= Unfused" arch.Arch.name))
    [ (Tf_arch.Presets.cloud, bert_4k); (Tf_arch.Presets.edge, bert_4k); (Tf_arch.Presets.cloud, llama3_16k); (Tf_arch.Presets.edge, llama3_16k) ]

let test_fusion_cuts_dram_traffic () =
  List.iter
    (fun arch ->
      let dram s = Traffic.dram_elements (eval arch bert_4k s).Strategies.traffic in
      Alcotest.(check bool) "FLAT < Unfused traffic" true
        (dram Strategies.Flat < dram Strategies.Unfused);
      Alcotest.(check bool) "LayerFuse < FuseMax traffic" true
        (dram Strategies.Fusemax_layerfuse < dram Strategies.Fusemax))
    [ Tf_arch.Presets.cloud; Tf_arch.Presets.edge ]

let test_unfused_score_traffic () =
  (* Unfused writes the quadratic scores off-chip; the fused strategies
     never do, so its DRAM traffic must dominate by roughly B*H*N^2. *)
  let unfused = eval Tf_arch.Presets.cloud bert_4k Strategies.Unfused in
  let fusemax = eval Tf_arch.Presets.cloud bert_4k Strategies.Fusemax in
  let scores = 64. *. 12. *. (4096. *. 4096.) in
  Alcotest.(check bool) "score traffic present" true
    (Traffic.dram_elements unfused.Strategies.traffic
     -. Traffic.dram_elements fusemax.Strategies.traffic
    > scores)

let test_energy_ordering () =
  List.iter
    (fun arch ->
      let baseline = eval arch bert_4k Strategies.Unfused in
      let ratio s = Strategies.energy_ratio ~baseline (eval arch bert_4k s) in
      Alcotest.(check bool) "fused energy below unfused" true (ratio Strategies.Fusemax_layerfuse < 1.);
      Alcotest.(check bool) "transfusion energy below unfused" true (ratio Strategies.Transfusion < 1.))
    [ Tf_arch.Presets.cloud; Tf_arch.Presets.edge ]

let test_transfusion_tiling_feasible () =
  List.iter
    (fun (arch, w) ->
      match (eval arch w Strategies.Transfusion).Strategies.tiling with
      | Some c -> Alcotest.(check bool) "tiling feasible" true (Transfusion.Tileseek.feasible arch w c)
      | None -> Alcotest.fail "TransFusion must report its tiling")
    [ (Tf_arch.Presets.cloud, bert_4k); (Tf_arch.Presets.edge, llama3_16k) ]

let test_baselines_report_no_tiling () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Strategies.name s) true
        ((eval Tf_arch.Presets.cloud bert_4k s).Strategies.tiling = None))
    [ Strategies.Unfused; Strategies.Flat; Strategies.Fusemax ]

let test_phase_structure () =
  let phases s = fst (Strategies.phases ~tileseek_iterations:40 Tf_arch.Presets.cloud bert_4k s) in
  Alcotest.(check int) "unfused: one phase per module" 4 (List.length (phases Strategies.Unfused));
  Alcotest.(check int) "flat: one phase per module" 4 (List.length (phases Strategies.Flat));
  Alcotest.(check int) "transfusion: one fused phase" 1 (List.length (phases Strategies.Transfusion));
  match phases Strategies.Transfusion with
  | [ p ] ->
      Alcotest.(check bool) "fused phase kind" true (p.Phase.kind = Phase.Fused_stack);
      let parts_total = List.fold_left (fun acc (_, f) -> acc +. f) 0. p.Phase.parts in
      Alcotest.(check (float 1e-9)) "parts sum to 1" 1. parts_total
  | _ -> Alcotest.fail "unexpected phase count"

let test_speedup_helpers () =
  let a = eval Tf_arch.Presets.cloud bert_4k Strategies.Unfused in
  let b = eval Tf_arch.Presets.cloud bert_4k Strategies.Transfusion in
  Alcotest.(check (float 1e-9)) "self speedup" 1. (Strategies.speedup ~baseline:a a);
  Alcotest.(check bool) "speedup consistent" true
    (Float.abs (Strategies.speedup ~baseline:a b -. (total a /. total b)) < 1e-12)

let test_attribution () =
  let baseline = (eval Tf_arch.Presets.cloud bert_64k Strategies.Fusemax).Strategies.latency in
  let optimized = (eval Tf_arch.Presets.cloud bert_64k Strategies.Transfusion).Strategies.latency in
  let entries = Speedup.attribute ~baseline ~optimized in
  Alcotest.(check int) "four buckets" 4 (List.length entries);
  let contributions = List.fold_left (fun acc e -> acc +. e.Speedup.contribution) 0. entries in
  Alcotest.(check (float 1e-6)) "contributions sum to 1" 1. contributions;
  List.iter
    (fun e -> Alcotest.(check bool) "non-negative" true (e.Speedup.contribution >= 0.))
    entries;
  Alcotest.(check (list string)) "bucket order" [ "QKV"; "MHA"; "LayerNorm"; "FFN" ]
    (List.map (fun e -> Phase.layer_kind_to_string e.Speedup.kind) entries)

let test_edge_behaviour () =
  (* On edge the paper's headline effect: TransFusion gains more than on
     cloud because DPipe balances matmuls across both arrays. *)
  let gain arch =
    let fm = eval arch llama3_16k Strategies.Fusemax in
    Strategies.speedup ~baseline:fm (eval arch llama3_16k Strategies.Transfusion)
  in
  Alcotest.(check bool) "edge gain over FuseMax exceeds cloud gain" true
    (gain Tf_arch.Presets.edge > gain Tf_arch.Presets.cloud);
  Alcotest.(check bool) "edge gain is substantial" true (gain Tf_arch.Presets.edge > 1.2)

let test_utilization_shift () =
  (* TransFusion raises 1D utilization on edge (paper Figure 10 mirror). *)
  let util_1d s = (eval Tf_arch.Presets.edge llama3_16k s).Strategies.latency.Latency.util_1d in
  Alcotest.(check bool) "1D utilization rises" true
    (util_1d Strategies.Transfusion > util_1d Strategies.Fusemax +. 0.2)

let test_objectives () =
  (* The energy objective never yields more energy than the latency
     objective; the latency objective never yields more latency. *)
  let w = llama3_16k and arch = Tf_arch.Presets.edge in
  let by obj = Strategies.evaluate ~tileseek_iterations:60 ~objective:obj arch w Strategies.Transfusion in
  let lat_first = by Strategies.Latency_obj and energy_first = by Strategies.Energy_obj in
  Alcotest.(check bool) "energy objective saves energy" true
    (Energy.total_pj energy_first.Strategies.energy
    <= Energy.total_pj lat_first.Strategies.energy *. 1.001);
  Alcotest.(check bool) "latency objective saves latency" true
    (total lat_first <= total energy_first *. 1.001)

let test_clock_scaling () =
  (* For a compute-bound point, doubling the clock halves the latency. *)
  let base = Tf_arch.Presets.edge in
  let fast =
    Arch.v ~name:"edge-2x" ~clock_hz:(2. *. base.Arch.clock_hz)
      ~element_bytes:base.Arch.element_bytes ~vector_eff_2d:base.Arch.vector_eff_2d
      ~matrix_eff_1d:base.Arch.matrix_eff_1d ~energy:base.Arch.energy ~pe_2d:base.Arch.pe_2d
      ~pe_1d:base.Arch.pe_1d ~buffer_bytes:base.Arch.buffer_bytes
      ~dram_bw_bytes_per_s:base.Arch.dram_bw_bytes_per_s ()
  in
  let slow = Strategies.evaluate ~tileseek_iterations:40 base bert_4k Strategies.Fusemax in
  let quick = Strategies.evaluate ~tileseek_iterations:40 fast bert_4k Strategies.Fusemax in
  Alcotest.(check bool) "2x clock ~ 2x faster when compute bound" true
    (Float.abs ((total slow /. total quick) -. 2.) < 0.2)

let test_adaptive_fusion_scope () =
  (* TransFusion emits either the full-stack or the intra-layer phase;
     both carry the Fused_stack kind and a sane traffic record. *)
  List.iter
    (fun (arch, w) ->
      match fst (Strategies.phases ~tileseek_iterations:40 arch w Strategies.Transfusion) with
      | [ p ] ->
          Alcotest.(check bool) "named variant" true
            (p.Phase.name = "stack(transfusion)" || p.Phase.name = "layers(transfusion)");
          Alcotest.(check bool) "positive dram traffic" true
            (Traffic.dram_elements p.Phase.traffic > 0.)
      | _ -> Alcotest.fail "expected one fused phase")
    [ (Tf_arch.Presets.cloud, bert_4k); (Tf_arch.Presets.edge, llama3_16k) ]

let test_layers_scaling () =
  (* Latency is linear in the layer count for a fixed workload. *)
  let one = Strategies.evaluate ~tileseek_iterations:40 ~layers:1 Tf_arch.Presets.edge bert_4k Strategies.Fusemax in
  let four = Strategies.evaluate ~tileseek_iterations:40 ~layers:4 Tf_arch.Presets.edge bert_4k Strategies.Fusemax in
  Alcotest.(check bool) "4 layers ~ 4x one layer" true
    (Float.abs ((total four /. total one) -. 4.) < 0.05)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_strategies"
    [
      ( "strategies",
        [
          quick "names" test_names;
          quick "latency ordering (Fig 8 claim)" test_ordering;
          quick "fusion cuts DRAM traffic" test_fusion_cuts_dram_traffic;
          quick "unfused pays score traffic" test_unfused_score_traffic;
          quick "energy ordering" test_energy_ordering;
          quick "transfusion tiling feasible" test_transfusion_tiling_feasible;
          quick "baselines report no tiling" test_baselines_report_no_tiling;
          quick "phase structure" test_phase_structure;
          quick "speedup helpers" test_speedup_helpers;
          quick "Eq. 47-48 attribution" test_attribution;
          quick "edge vs cloud gains" test_edge_behaviour;
          quick "utilization shift on edge" test_utilization_shift;
          quick "search objectives" test_objectives;
          quick "clock scaling" test_clock_scaling;
          quick "adaptive fusion scope" test_adaptive_fusion_scope;
          quick "layer-count linearity" test_layers_scaling;
        ] );
    ]
