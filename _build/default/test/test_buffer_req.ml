(* Tests for the Table 2 buffer-requirement formulas and the per-Einsum
   latency estimator (Eq. 40-42). *)

module Buffer_req = Transfusion.Buffer_req
module Latency_est = Transfusion.Latency_est
open Tf_arch
open Tf_einsum

let dims ?(b = 2) ?(d = 8) ?(p = 16) ?(m1 = 2) ?(m0 = 4) ?(h = 2) ?(e = 4) ?(f = 4) ?(s = 32)
    ?(p_row = 2) () =
  { Buffer_req.b; d; p; m1; m0; h; e; f; s; p_row }

(* Hand-computed instances of the Table 2 formulas. *)

let test_qkv_formula () =
  (* B*D*(4P + 3*M1*M0) + 3*D*H*E + 2*B*H*P
     = 2*8*(64 + 24) + 3*8*2*4 + 2*2*2*16 = 1408 + 192 + 128 = 1728. *)
  Alcotest.(check (float 0.)) "qkv" 1728. (Buffer_req.qkv (dims ()))

let test_mha_formula () =
  (* B*H*E*(P + 2*M1*M0) + B*H*P*(2 + 2F) + 4*M0*P' + 18*P'
     = 2*2*4*(16 + 16) + 2*2*16*(2 + 8) + 4*4*2 + 36 = 512 + 640 + 32 + 36 = 1220. *)
  Alcotest.(check (float 0.)) "mha" 1220. (Buffer_req.mha (dims ()))

let test_layernorm_formula () =
  (* 3*B*H*F*P + 4*H*F*P' = 3*2*2*4*16 + 4*2*4*2 = 768 + 64 = 832. *)
  Alcotest.(check (float 0.)) "layernorm" 832. (Buffer_req.add_layernorm (dims ()))

let test_ffn_formula () =
  (* H*F*(2*B*P + S) + S*(P + 2) + 2*S*P'
     = 2*4*(64 + 32) + 32*18 + 2*32*2 = 768 + 576 + 128 = 1472. *)
  Alcotest.(check (float 0.)) "ffn" 1472. (Buffer_req.ffn (dims ()))

let test_worst_and_fits () =
  let d = dims () in
  Alcotest.(check (float 0.)) "worst is max" 1728. (Buffer_req.worst d);
  Alcotest.(check bool) "fits in 2000" true (Buffer_req.fits ~buffer_elements:2000 d);
  Alcotest.(check bool) "does not fit in 1000" false (Buffer_req.fits ~buffer_elements:1000 d)

let test_monotonic_in_p () =
  let base = Buffer_req.worst (dims ~p:8 ()) in
  let bigger = Buffer_req.worst (dims ~p:32 ()) in
  Alcotest.(check bool) "bigger tile needs more buffer" true (bigger > base)

let test_of_workload () =
  let w = Tf_workloads.Workload.v Tf_workloads.Presets.bert ~seq_len:4096 in
  let d = Buffer_req.of_workload w ~b:1 ~d:128 ~p:256 ~m1:2 ~m0:128 ~p_row:1 ~s:512 in
  Alcotest.(check int) "h from model" 12 d.Buffer_req.h;
  Alcotest.(check int) "e from model" 64 d.Buffer_req.e;
  Alcotest.(check int) "d is the tile" 128 d.Buffer_req.d;
  let raises label f =
    Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "b must divide batch" (fun () ->
      Buffer_req.of_workload w ~b:3 ~d:128 ~p:16 ~m1:1 ~m0:16 ~p_row:1 ~s:16);
  raises "m1*m0 must divide seq" (fun () ->
      Buffer_req.of_workload w ~b:1 ~d:128 ~p:16 ~m1:3 ~m0:1024 ~p_row:1 ~s:16);
  raises "non-positive" (fun () ->
      Buffer_req.of_workload w ~b:1 ~d:128 ~p:0 ~m1:1 ~m0:16 ~p_row:1 ~s:16)

let prop_formulas_positive =
  QCheck.Test.make ~name:"all buffer requirements positive and worst dominates" ~count:200
    QCheck.(
      quad (int_range 1 8) (int_range 1 64) (int_range 1 256) (pair (int_range 1 8) (int_range 1 64)))
    (fun (b, d, p, (m1, m0)) ->
      let dims = dims ~b ~d ~p ~m1 ~m0 () in
      let values =
        [ Buffer_req.qkv dims; Buffer_req.mha dims; Buffer_req.add_layernorm dims; Buffer_req.ffn dims ]
      in
      List.for_all (fun v -> v > 0.) values
      && List.for_all (fun v -> Buffer_req.worst dims >= v) values)

(* Latency estimation (Eq. 40-42) -------------------------------------- *)

let arch =
  Arch.v ~name:"toy" ~clock_hz:2e9 ~vector_eff_2d:0.5 ~matrix_eff_1d:0.5
    ~pe_2d:(Pe_array.two_d 8 8) ~pe_1d:(Pe_array.one_d 16) ~buffer_bytes:1024
    ~dram_bw_bytes_per_s:1e9 ()

let r = Tensor_ref.v
let matmul = Einsum.contraction (r "Z" [ "m"; "n" ]) [ r "A" [ "m"; "k" ]; r "B" [ "k"; "n" ] ]
let expmap = Einsum.map Scalar_op.Exp (r "E" [ "m" ]) [ r "A2" [ "m" ] ]
let extents = Extents.of_list [ ("m", 8); ("k", 4); ("n", 2) ]

let test_cycles () =
  (* matmul load = 8*2*4 = 64; on 2D at peak 64 PEs -> 1 cycle. *)
  Alcotest.(check (float 1e-9)) "matrix on 2D" 1. (Latency_est.cycles arch extents Arch.Pe_2d matmul);
  (* on 1D: 16 PEs * 0.5 matrix efficiency = 8 -> 8 cycles. *)
  Alcotest.(check (float 1e-9)) "matrix on 1D" 8. (Latency_est.cycles arch extents Arch.Pe_1d matmul);
  (* exp load = 8*2 = 16; 1D peak 16 -> 1 cycle; 2D 64*0.5=32 -> 0.5. *)
  Alcotest.(check (float 1e-9)) "vector on 1D" 1. (Latency_est.cycles arch extents Arch.Pe_1d expmap);
  Alcotest.(check (float 1e-9)) "vector on 2D" 0.5 (Latency_est.cycles arch extents Arch.Pe_2d expmap)

let test_seconds () =
  (* Eq. 42: cycles / f_clk at 2 GHz. *)
  Alcotest.(check (float 1e-18)) "seconds" 5e-10 (Latency_est.seconds arch extents Arch.Pe_2d matmul)

let test_resources () =
  Alcotest.(check bool) "native matmul 2D" true (Latency_est.native_resource matmul = Arch.Pe_2d);
  Alcotest.(check bool) "native map 1D" true (Latency_est.native_resource expmap = Arch.Pe_1d);
  Alcotest.(check bool) "best matmul 2D" true (Latency_est.best_resource arch extents matmul = Arch.Pe_2d);
  (* On this toy arch the derated 2D is still faster for vectors. *)
  Alcotest.(check bool) "best exp on 2D here" true
    (Latency_est.best_resource arch extents expmap = Arch.Pe_2d)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_buffer_latency"
    [
      ( "buffer_req (Table 2)",
        [
          quick "QKV formula" test_qkv_formula;
          quick "MHA formula" test_mha_formula;
          quick "LayerNorm formula" test_layernorm_formula;
          quick "FFN formula" test_ffn_formula;
          quick "worst and fits" test_worst_and_fits;
          quick "monotonic in P" test_monotonic_in_p;
          quick "of_workload" test_of_workload;
        ] );
      ( "latency_est (Eq. 40-42)",
        [
          quick "cycles" test_cycles;
          quick "seconds" test_seconds;
          quick "resource selection" test_resources;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_formulas_positive ]);
    ]
