(* Tests for encoder/decoder composition and the attention-flavour
   plumbing (causal and cross-attention cost accounting). *)

module Strategies = Transfusion.Strategies
module Structures = Transfusion.Structures
module Layer_costs = Transfusion.Layer_costs
module Latency = Tf_costmodel.Latency
open Tf_workloads

let edge = Tf_arch.Presets.edge
let t5_4k = Workload.v Tf_workloads.Presets.t5 ~seq_len:4096

(* Layer_costs flavour accounting --------------------------------------- *)

let test_causal_halves_attention () =
  let full = Layer_costs.mha ~m0:256 t5_4k in
  let causal = Layer_costs.mha ~m0:256 ~causal:true t5_4k in
  (* The matrix work of attention halves exactly (both matmuls are
     loop-body work). *)
  Alcotest.(check (float 1.)) "matrix halves" (full.Layer_costs.matrix /. 2.)
    causal.Layer_costs.matrix;
  Alcotest.(check bool) "vector reduced" true
    (causal.Layer_costs.vector < full.Layer_costs.vector)

let test_cross_scales_with_kv () =
  let self = Layer_costs.mha ~m0:256 t5_4k in
  let double = Layer_costs.mha ~m0:256 ~kv_len:8192 t5_4k in
  Alcotest.(check (float 1.)) "matrix doubles with kv length"
    (2. *. self.Layer_costs.matrix) double.Layer_costs.matrix;
  let qkv_self = Layer_costs.qkv ~m0:256 t5_4k in
  let qkv_double = Layer_costs.qkv ~m0:256 ~kv_len:8192 t5_4k in
  Alcotest.(check bool) "k/v projections grow" true
    (qkv_double.Layer_costs.matrix > qkv_self.Layer_costs.matrix)

let test_include_ffn () =
  let with_ffn = Layer_costs.total ~m0:256 t5_4k in
  let without = Layer_costs.total ~m0:256 ~include_ffn:false t5_4k in
  let ffn = Layer_costs.ffn t5_4k in
  Alcotest.(check (float 1.)) "difference is the ffn" ffn.Layer_costs.matrix
    (with_ffn.Layer_costs.matrix -. without.Layer_costs.matrix)

(* Strategy-level flavours ----------------------------------------------- *)

let eval ?attention ?include_ffn strategy =
  Strategies.evaluate ~tileseek_iterations:40 ?attention ?include_ffn edge t5_4k strategy

let test_causal_faster () =
  List.iter
    (fun strategy ->
      let self = eval strategy in
      let causal = eval ~attention:Strategies.Causal_self strategy in
      Alcotest.(check bool)
        (Strategies.name strategy ^ ": causal is cheaper")
        true
        (causal.Strategies.latency.Latency.total_s < self.Strategies.latency.Latency.total_s))
    [ Strategies.Unfused; Strategies.Fusemax; Strategies.Transfusion ]

let test_cross_attention_kv_cost () =
  let short = eval ~attention:(Strategies.Cross { kv_len = 1024 }) Strategies.Fusemax in
  let long = eval ~attention:(Strategies.Cross { kv_len = 16384 }) Strategies.Fusemax in
  Alcotest.(check bool) "longer encoder context costs more" true
    (long.Strategies.latency.Latency.total_s > short.Strategies.latency.Latency.total_s)

(* Structures ------------------------------------------------------------- *)

let test_structure_builders () =
  let m = Tf_workloads.Presets.t5 in
  let enc = Structures.encoder m in
  Alcotest.(check int) "encoder layers" m.Model.layers enc.Structures.layers;
  Alcotest.(check int) "encoder sublayers" 1 (List.length enc.Structures.sublayers);
  let dec = Structures.decoder ~encoder_len:4096 m in
  Alcotest.(check int) "decoder sublayers" 2 (List.length dec.Structures.sublayers);
  (match dec.Structures.sublayers with
  | [ first; second ] ->
      Alcotest.(check bool) "first is masked self without ffn" true
        (first.Structures.attention = Strategies.Causal_self && not first.Structures.include_ffn);
      Alcotest.(check bool) "second is cross with ffn" true
        (second.Structures.attention = Strategies.Cross { kv_len = 4096 }
        && second.Structures.include_ffn)
  | _ -> Alcotest.fail "unexpected decoder shape");
  Alcotest.(check int) "enc-dec pair" 2
    (List.length (Structures.encoder_decoder m ~seq_len:4096));
  let shallow = Structures.decoder_only ~layers:2 m in
  Alcotest.(check int) "layer override" 2 shallow.Structures.layers

let test_structure_evaluation () =
  let m = Tf_workloads.Presets.t5 in
  let strategy = Strategies.Fusemax in
  let enc =
    Structures.evaluate ~tileseek_iterations:40 edge t5_4k (Structures.encoder m) strategy
  in
  let dec_only =
    Structures.evaluate ~tileseek_iterations:40 edge t5_4k (Structures.decoder_only m) strategy
  in
  (* The causal stack must cost less than the encoder stack. *)
  Alcotest.(check bool) "decoder-only cheaper than encoder" true
    (dec_only.Structures.latency.Latency.total_s < enc.Structures.latency.Latency.total_s);
  (* An encoder-decoder pair costs more than either half. *)
  let pair =
    List.map
      (fun s -> Structures.evaluate ~tileseek_iterations:40 edge t5_4k s strategy)
      (Structures.encoder_decoder m ~seq_len:4096)
  in
  let pair_total = Structures.total_seconds pair in
  Alcotest.(check bool) "pair exceeds the encoder" true
    (pair_total > enc.Structures.latency.Latency.total_s);
  Alcotest.(check bool) "pair energy positive" true (Structures.total_energy_pj pair > 0.)

let test_structure_strategy_ordering () =
  let m = Tf_workloads.Presets.t5 in
  let structure = Structures.decoder_only m in
  let total strategy =
    (Structures.evaluate ~tileseek_iterations:40 edge t5_4k structure strategy)
      .Structures.latency.Latency.total_s
  in
  Alcotest.(check bool) "TF fastest on the decoder too" true
    (total Strategies.Transfusion <= total Strategies.Fusemax *. 1.01
    && total Strategies.Fusemax <= total Strategies.Unfused *. 1.01)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "transfusion_structures"
    [
      ( "layer_costs flavours",
        [
          quick "causal halves attention" test_causal_halves_attention;
          quick "cross scales with kv length" test_cross_scales_with_kv;
          quick "ffn toggling" test_include_ffn;
        ] );
      ( "strategy flavours",
        [
          quick "causal is cheaper" test_causal_faster;
          quick "cross kv cost" test_cross_attention_kv_cost;
        ] );
      ( "structures",
        [
          quick "builders" test_structure_builders;
          quick "evaluation" test_structure_evaluation;
          quick "strategy ordering" test_structure_strategy_ordering;
        ] );
    ]
