(* The benchmark harness.

   Part 1 regenerates every table/figure of the paper's evaluation
   (Section 6.2) by running the full simulation sweep and printing the
   series the paper plots — Figures 8a/8b, 9a/9b, 10a/10b, 11, 12a/12b,
   13, plus the Section 6.2 headline geomeans.

   Part 2 runs Bechamel microbenchmarks of the framework's own algorithms
   (DPipe scheduling, bipartition enumeration, MCTS, TileSeek, the
   cascade interpreter, full strategy evaluations), so regressions in the
   scheduler itself are visible.

   Pass --quick to use the reduced sequence sweep.  Pass --json PATH to
   additionally write machine-readable timings (per-figure wall seconds,
   per-microbenchmark ns/run, the domain count) for BENCH_*.json perf
   trajectory tracking; the schema is documented in EXPERIMENTS.md.
   Pass --obs to enable the Tf_obs metrics registry during the run; the
   snapshot is embedded in the JSON under "metrics" (without --obs the
   section is present but empty, and the run is untouched — perf
   baselines stay comparable). *)

open Bechamel
open Toolkit
module E = Tf_experiments
module Strategies = Transfusion.Strategies

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let obs = Array.exists (fun a -> a = "--obs") Sys.argv

let () = if obs then Tf_obs.set_enabled true

let json_path =
  let n = Array.length Sys.argv in
  let rec scan i =
    if i >= n then None
    else if Sys.argv.(i) = "--json" && i + 1 < n then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's figures                                         *)

let figure_steps () =
  let archs = [ Tf_arch.Presets.cloud; Tf_arch.Presets.edge ] in
  let llama3 = Tf_workloads.Presets.llama3 in
  [
    ( "fig8a",
      fun () ->
        E.Fig8_speedup.print
          ~title:"Fig 8a: Llama3 speedup over Unfused across sequence lengths (cloud, edge)"
          (E.Fig8_speedup.scaling ~quick archs llama3) );
    ( "fig8b",
      fun () ->
        E.Fig8_speedup.print ~title:"Fig 8b: model-wise speedup over Unfused at 64K (cloud)"
          (E.Fig8_speedup.model_wise Tf_arch.Presets.cloud) );
    ( "fig9a",
      fun () ->
        E.Fig9_pe_size.print ~title:"Fig 9a: Llama3 speedup, edge 2D PE 32x32 and 64x64"
          (E.Fig9_pe_size.scaling ~quick llama3) );
    ( "fig9b",
      fun () ->
        E.Fig9_pe_size.print
          ~title:"Fig 9b: model-wise speedup at 64K, edge 2D PE 32x32 and 64x64"
          (E.Fig9_pe_size.model_wise ()) );
    ( "fig10a",
      fun () ->
        E.Fig10_utilization.print ~title:"Fig 10a: 1D/2D PE utilization, Llama3 (cloud)"
          (E.Fig10_utilization.scaling ~quick Tf_arch.Presets.cloud llama3) );
    ( "fig10b",
      fun () ->
        E.Fig10_utilization.print ~title:"Fig 10b: 1D/2D PE utilization, models at 64K (cloud)"
          (E.Fig10_utilization.model_wise Tf_arch.Presets.cloud) );
    ( "fig11",
      fun () ->
        E.Fig11_contribution.print
          ~title:"Fig 11: per-layer speedup contribution, TransFusion over FuseMax (Llama3)"
          (E.Fig11_contribution.scaling ~quick archs llama3) );
    ( "fig12a",
      fun () ->
        E.Fig12_energy.print ~title:"Fig 12a: Llama3 energy vs Unfused (cloud, edge)"
          (E.Fig12_energy.scaling ~quick archs llama3) );
    ( "fig12b",
      fun () ->
        E.Fig12_energy.print ~title:"Fig 12b: model-wise energy vs Unfused at 64K (cloud)"
          (E.Fig12_energy.model_wise Tf_arch.Presets.cloud) );
    ( "fig13",
      fun () ->
        E.Fig13_breakdown.print
          ~title:"Fig 13: energy breakdown across the memory hierarchy (Llama3)"
          (E.Fig13_breakdown.scaling ~quick archs llama3) );
    ( "headline",
      fun () ->
        E.Exp_common.print_header "Section 6.2 headline geomeans (TransFusion vs baselines)";
        List.iter (fun arch -> E.Headline.print (E.Headline.compute ~quick arch)) archs );
    ( "generation",
      fun () ->
        E.Exp_generation.print
          ~title:"Autoregressive generation: TTFT / per-token latency / energy (cloud)"
          (E.Exp_generation.sweep ~quick [ Tf_arch.Presets.cloud ]
             [ Tf_workloads.Presets.bert; llama3 ]) );
    ( "serving",
      fun () ->
        let costs =
          Tf_serving.Costs.create ~strategy:Strategies.Transfusion
            ~iterations:(if quick then 30 else 60)
            Tf_arch.Presets.edge Tf_workloads.Presets.bert
        in
        Tf_serving.Exp_serving.print
          ~title:"Serving: admission policies x load (edge, BERT, bursty arrivals)"
          (Tf_serving.Exp_serving.sweep ~n:(if quick then 60 else 120) ~costs ()) );
  ]

(* Ablations and extension studies (DESIGN.md Section 4 and the paper's
   Section 3.2 composition claim). *)
let ablation_steps () =
  let t5 = Tf_workloads.Presets.t5 in
  let llama3 = Tf_workloads.Presets.llama3 in
  [
    ("ablation/dpipe", fun () -> E.Ablations.print_dpipe (E.Ablations.dpipe llama3));
    ( "ablation/tileseek",
      fun () -> E.Ablations.print_tileseek (E.Ablations.tileseek ~iterations:150 t5) );
    ( "ablation/sensitivity",
      fun () -> E.Ablations.print_sensitivity (E.Ablations.sensitivity llama3) );
    ("ablation/batch", fun () -> E.Ablations.print_batch (E.Ablations.batch t5));
    ("ablation/objectives", fun () -> E.Ablations.print_objectives (E.Ablations.objectives t5));
    ( "ablation/structures",
      fun () ->
        E.Exp_structures.print
          ~title:"Extension: encoder / decoder / encoder-decoder (edge, T5, 16K)"
          (E.Exp_structures.run Tf_arch.Presets.edge t5) );
    ( "ablation/roofline",
      fun () ->
        E.Exp_roofline.print ~title:"Analysis: per-module roofline classification (Llama3)"
          (E.Exp_roofline.run ~quick:true [ Tf_arch.Presets.cloud; Tf_arch.Presets.edge ] llama3)
    );
  ]

(* Run each step, recording wall time and — with --obs — the snapshot
   delta the step caused (per-step counters, not cumulative: each step's
   section shows only what that step did).  The printed output is exactly
   the step's own (no timing lines on stdout, so figure output is
   stable); per-step metric deltas go to stderr. *)
let run_timed steps =
  List.map
    (fun (name, step) ->
      let before = if obs then Tf_obs.snapshot () else [] in
      let t0 = Unix.gettimeofday () in
      step ();
      let wall = Unix.gettimeofday () -. t0 in
      let delta = if obs then Tf_obs.Snapshot.diff ~before (Tf_obs.snapshot ()) else [] in
      if obs && delta <> [] then
        Printf.eprintf "== %s (%.2fs)\n%s%!" name wall (Tf_obs.render_snapshot delta);
      (name, wall, delta))
    steps

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks of the framework itself                     *)

let workload = Tf_workloads.Workload.v Tf_workloads.Presets.bert ~seq_len:4096
let cloud = Tf_arch.Presets.cloud
let edge = Tf_arch.Presets.edge

let mha_dag_bench () =
  let cascade = Transfusion.Cascades.mha () in
  let totals = Array.of_list (Transfusion.Layer_costs.op_totals workload cascade) in
  let g = Tf_einsum.Cascade.to_dag cascade in
  let load n = totals.(n).Transfusion.Layer_costs.total /. 256. in
  let matrix n = Tf_einsum.Einsum.is_matrix_op totals.(n).Transfusion.Layer_costs.op in
  fun () -> ignore (Transfusion.Dpipe.schedule cloud ~load ~matrix g)

let full_layer_dag_bench () =
  let cascade = Transfusion.Cascades.full_layer Tf_einsum.Scalar_op.Gelu in
  let totals = Array.of_list (Transfusion.Layer_costs.op_totals workload cascade) in
  let g = Tf_einsum.Cascade.to_dag cascade in
  let load n = totals.(n).Transfusion.Layer_costs.total /. 256. in
  let matrix n = Tf_einsum.Einsum.is_matrix_op totals.(n).Transfusion.Layer_costs.op in
  fun () -> ignore (Transfusion.Dpipe.schedule edge ~load ~matrix g)

let partition_bench () =
  let g = Tf_einsum.Cascade.to_dag (Transfusion.Cascades.full_layer Tf_einsum.Scalar_op.Gelu) in
  fun () -> ignore (Tf_dag.Partition.enumerate ~limit:512 g)

let mcts_bench () =
  let problem =
    {
      Transfusion.Mcts.actions = (fun path -> if List.length path < 3 then [ 0; 1; 2; 3 ] else []);
      reward = (fun path -> float_of_int (List.fold_left ( + ) 0 path));
    }
  in
  fun () ->
    let rng = Random.State.make [| 1 |] in
    ignore (Transfusion.Mcts.search ~rng ~iterations:100 problem)

let tileseek_search_bench () =
  (* The cost callback is the production scoring path (the prebuilt
     evaluation state of Strategies), so this measures what a search
     actually costs end-to-end — it used to rebuild the full-model phase
     list per candidate, which buried the search machinery itself. *)
  let evaluate = Strategies.Private.transfusion_scorer edge workload in
  fun () -> ignore (Transfusion.Tileseek.search ~iterations:100 edge workload ~evaluate ())

let interp_bench () =
  let rng = Random.State.make [| 5 |] in
  let extents = Tf_einsum.Extents.of_list [ ("h", 2); ("e", 8); ("f", 8); ("p", 8); ("m0", 8) ] in
  let nd shape = Tf_tensor.Nd.random rng shape in
  let inputs =
    [
      ("Q", nd [| 2; 8; 8 |]);
      ("BK", nd [| 2; 8; 8 |]);
      ("BV", nd [| 2; 8; 8 |]);
      ("RM_prev", Tf_tensor.Nd.create [| 2; 8 |] Float.neg_infinity);
      ("RD_prev", Tf_tensor.Nd.create [| 2; 8 |] 0.);
      ("RNV_prev", Tf_tensor.Nd.create [| 2; 8; 8 |] 0.);
    ]
  in
  let cascade = Transfusion.Cascades.mha () in
  fun () -> ignore (Tf_tensor.Cascade_interp.run extents cascade ~inputs)

let streaming_attention_bench () =
  let rng = Random.State.make [| 6 |] in
  let q = Tf_tensor.Nd.random rng [| 16; 16 |] in
  let k = Tf_tensor.Nd.random rng [| 64; 16 |] in
  let v = Tf_tensor.Nd.random rng [| 64; 16 |] in
  fun () -> ignore (Tf_tensor.Attention.streaming_one_pass ~m0:16 ~q ~k ~v ())

let evaluate_bench strategy () =
 fun () -> ignore (Strategies.evaluate ~tileseek_iterations:30 edge workload strategy)

(* Fine-grained probes of the TileSeek evaluation hot path: one candidate
   scored through a prebuilt evaluation state (what each MCTS rollout
   pays after the per-m0 slice warms up), one full phase construction
   from a cold state (slice derivation included), and the latency
   roll-up over a full-model phase list on its own. *)
let tiling_cost_hot_bench () =
  let score = Strategies.Private.transfusion_scorer edge workload in
  let config = Transfusion.Tileseek.greedy edge workload in
  fun () -> ignore (score config : float)

let transfusion_phase_cold_bench () =
  let config = Transfusion.Tileseek.greedy edge workload in
  fun () -> ignore (Strategies.Private.transfusion_phase_cold edge workload config)

let latency_evaluate_bench () =
  let phases, _ =
    Strategies.phases ~tileseek_iterations:30 edge workload Strategies.Transfusion
  in
  fun () -> ignore (Tf_costmodel.Latency.evaluate edge phases)

(* One range certification versus the four point lints it subsumes: a
   serving system bucketing requests at 512-multiples up to 16K either
   certifies the band once or re-lints every bucket it actually sees.
   The point path re-derives what a lint of one concrete length needs —
   greedy tiling, Table 2 feasibility, the DPipe schedule — with no
   memoisation, matching what the certifier derives symbolically. *)
let cert_model = Tf_workloads.Presets.t5

let range_certify_bench () =
 fun () ->
  ignore
    (Tf_analysis.Range_cert.certify cloud cert_model
       { Tf_analysis.Range_cert.lo = 512; hi = 16384; step = 512 })

let point_lints_bench () =
  let cascade = Transfusion.Cascades.full_layer cert_model.Tf_workloads.Model.activation in
  let g = Tf_einsum.Cascade.to_dag cascade in
  fun () ->
    List.iter
      (fun seq_len ->
        let w = Tf_workloads.Workload.v cert_model ~seq_len in
        let config = Transfusion.Tileseek.greedy ~kv_len:seq_len cloud w in
        ignore (Tf_analysis.Tiling_lint.verify ~kv_len:seq_len cloud w config);
        let totals = Array.of_list (Transfusion.Layer_costs.op_totals w cascade) in
        let load n = totals.(n).Transfusion.Layer_costs.total /. 256. in
        let matrix n = Tf_einsum.Einsum.is_matrix_op totals.(n).Transfusion.Layer_costs.op in
        ignore (Transfusion.Dpipe.schedule cloud ~load ~matrix g))
      [ 512; 2048; 8192; 16384 ]

let tests () =
  [
    Test.make ~name:"dpipe/mha-dag(cloud)" (Staged.stage (mha_dag_bench ()));
    Test.make ~name:"dpipe/full-layer-dag(edge)" (Staged.stage (full_layer_dag_bench ()));
    Test.make ~name:"dag/partition-enumerate(29)" (Staged.stage (partition_bench ()));
    Test.make ~name:"tileseek/mcts-100-iters" (Staged.stage (mcts_bench ()));
    Test.make ~name:"tileseek/search-100-iters(edge)" (Staged.stage (tileseek_search_bench ()));
    Test.make ~name:"tensor/interp-mha-tile" (Staged.stage (interp_bench ()));
    Test.make ~name:"tensor/streaming-attention" (Staged.stage (streaming_attention_bench ()));
    Test.make ~name:"strategy/evaluate-fusemax" (Staged.stage (evaluate_bench Strategies.Fusemax ()));
    Test.make ~name:"strategy/evaluate-transfusion"
      (Staged.stage (evaluate_bench Strategies.Transfusion ()));
    Test.make ~name:"strategy/tiling-cost(hot)" (Staged.stage (tiling_cost_hot_bench ()));
    Test.make ~name:"strategy/transfusion-phase(cold)"
      (Staged.stage (transfusion_phase_cold_bench ()));
    Test.make ~name:"costmodel/latency-evaluate" (Staged.stage (latency_evaluate_bench ()));
    Test.make ~name:"cert/range-certify(T5,512:16384)" (Staged.stage (range_certify_bench ()));
    Test.make ~name:"cert/point-lints-x4(T5)" (Staged.stage (point_lints_bench ()));
  ]

let microbench () =
  E.Exp_common.print_header "Microbenchmarks (Bechamel, ns per run)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"transfusion" (tests ())) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  List.map
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      let r_square = Analyze.OLS.r_square ols_result in
      Printf.printf "%-50s %16.1f ns/run%s\n" name estimate
        (match r_square with
        | Some r2 -> Printf.sprintf "   (r2=%.3f)" r2
        | None -> "");
      (name, estimate, r_square))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Part 3: the serve daemon's request path, in process.

   Drives [Tf_serve.Server.handle_line] directly (no socket, so this
   measures the scheduling service itself, not loopback I/O): one cold
   pass over distinct schedule keys that all miss the cache and run the
   search, then repeated warm rounds over the same keys that are
   answered from the schedule memo.  The issue's acceptance bar is warm
   >= 20x cold sustained qps; bench_diff gates [serve/qps-warm] so a
   regression in the cached answer path fails CI.  Hit/miss counts come
   from the Tf_obs registry ([memo.serve.schedule.*]), which
   [Server.create] enables. *)

let serve_bench () =
  E.Exp_common.print_header "Serve daemon: schedule requests per second (cold vs warm)";
  (* A truly cold start: earlier figure steps share Exp_common's summary
     cache, and a stray hit would understate the cold cost. *)
  E.Exp_common.reset_cache ();
  let server = Tf_serve.Server.create Tf_serve.Server.default_config in
  let requests =
    List.map
      (fun seq ->
        Printf.sprintf
          "{\"op\":\"schedule\",\"model\":\"BERT\",\"seq\":%d,\"batch\":8,\
           \"strategy\":\"transfusion\",\"iterations\":30}"
          seq)
      [ 1024; 2048; 3072; 4096; 5120; 6144 ]
  in
  let time_pass_on server reqs =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun r ->
        let response = Tf_serve.Server.handle_line server r in
        (* A failing request would time error formatting, not scheduling. *)
        if not (String.length response > 0 && response.[0] = '{') then
          failwith ("serve bench: bad response: " ^ response))
      reqs;
    Unix.gettimeofday () -. t0
  in
  let time_pass = time_pass_on server in
  let count_misses () =
    Option.value ~default:0
      (Tf_obs.counter_value (Tf_obs.snapshot ()) "memo.serve.schedule.misses_total")
  in
  let n_cold = List.length requests in
  let cold_s = time_pass requests in
  (* Every cold key must actually have missed — a silent field-name or
     defaulting bug would collapse the keys and time the cache instead
     of the scheduler. *)
  if count_misses () <> n_cold then
    failwith
      (Printf.sprintf "serve bench: cold pass took %d misses for %d distinct keys"
         (count_misses ()) n_cold);
  (* Telemetry tax: the identical warm pass through a second server
     running the full observability pipeline — sampler thread feeding
     the stats window, process/GC gauges, a per-request access-log
     record.  The two servers are timed in interleaved blocks because
     the process drifts (heap growth, GC pressure) over the bench run:
     back-to-back measurement charges that drift entirely to whichever
     server runs second and can fabricate (or mask) tens of percent.
     Each block is scored separately and the per-server estimate is the
     fastest block: GC pauses and scheduler preemption only ever add
     time, so min-of-blocks converges on the true cost while a sum (or
     mean) inherits whichever outliers landed in it — on this runner
     the run-to-run spread of the summed estimate is 2-3x the effect
     being measured.  The issue's acceptance bar is <= 5% overhead on
     serve/qps-warm; bench_diff gates the absolute entry, and the
     in-bench check only trips on something structurally wrong (an
     accidental flush or sample per request), not runner jitter. *)
  let tmp_log = Filename.temp_file "tf_bench_access" ".log" in
  let t_server =
    Tf_serve.Server.create
      {
        Tf_serve.Server.default_config with
        access_log = Some tmp_log;
        sample_interval_s = 0.1;
      }
  in
  List.iter (fun r -> ignore (Tf_serve.Server.handle_line t_server r : string)) requests;
  Tf_serve.Telemetry.start (Tf_serve.Server.telemetry t_server);
  let warm_rounds = if quick then 800 else 2000 in
  let blocks = 10 in
  let block_reqs = List.concat (List.init (warm_rounds / blocks) (fun _ -> requests)) in
  (* One untimed block each so both servers enter measurement in the
     same steady state. *)
  ignore (time_pass block_reqs : float);
  ignore (time_pass_on t_server block_reqs : float);
  let warm_min = ref Float.infinity and tel_min = ref Float.infinity in
  for _ = 1 to blocks do
    warm_min := Float.min !warm_min (time_pass block_reqs);
    tel_min := Float.min !tel_min (time_pass_on t_server block_reqs)
  done;
  let warm_s = !warm_min and tel_s = !tel_min in
  Tf_serve.Telemetry.stop (Tf_serve.Server.telemetry t_server);
  (match Tf_serve.Server.access_log t_server with
  | Some log -> Tf_serve.Access_log.close log
  | None -> ());
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (tmp_log :: List.init 8 (fun i -> Printf.sprintf "%s.%d" tmp_log (i + 1)));
  let n_warm = List.length block_reqs in
  let per_req ns total = ns *. 1e9 /. float_of_int total in
  let cold_ns = per_req cold_s n_cold
  and warm_ns = per_req warm_s n_warm
  and tel_ns = per_req tel_s n_warm in
  let qps n s = if s > 0. then float_of_int n /. s else Float.nan in
  Printf.printf "%-50s %16.1f ns/req   (%.1f qps, %d requests)\n" "serve/qps-cold" cold_ns
    (qps n_cold cold_s) n_cold;
  Printf.printf "%-50s %16.1f ns/req   (%.1f qps, %d requests)\n" "serve/qps-warm" warm_ns
    (qps n_warm warm_s) n_warm;
  let snap = Tf_obs.snapshot () in
  let count name = Option.value ~default:0 (Tf_obs.counter_value snap name) in
  let hits = count "memo.serve.schedule.hits_total" in
  let misses = count "memo.serve.schedule.misses_total" in
  Printf.printf "warm speedup %.1fx; schedule cache: %d hits, %d misses (hit rate %.3f)\n"
    (cold_ns /. warm_ns) hits misses
    (if hits + misses > 0 then float_of_int hits /. float_of_int (hits + misses) else 0.);
  let overhead = (tel_ns -. warm_ns) /. warm_ns *. 100. in
  Printf.printf "%-50s %16.1f ns/req   (%.1f qps, %d requests)\n" "serve/qps-warm-telemetry"
    tel_ns (qps n_warm tel_s) n_warm;
  Printf.printf "telemetry overhead on warm path: %+.1f%%\n" overhead;
  if overhead > 50. then
    failwith
      (Printf.sprintf "serve bench: telemetry overhead %.1f%% — per-request sampling or flushing?"
         overhead);
  [
    ("serve/qps-cold", cold_ns, None);
    ("serve/qps-warm", warm_ns, None);
    ("serve/qps-warm-telemetry", tel_ns, None);
  ]

(* ------------------------------------------------------------------ *)
(* Part 4: the continuous-batching simulator's steady state.

   Times full simulator runs over a seeded bursty trace with the shape
   memo already warm (the per-class TileSeek searches are paid untimed
   up front), so the entry isolates the engine itself — ingest, policy,
   feasibility-memo hits, step accounting — at its advertised
   O(distinct classes) cost.  bench_diff gates
   [serving/steady-state-qps]; losing the shape memo shows up as the
   per-request search cost (~1000x), not as percents. *)

let serving_bench () =
  E.Exp_common.print_header "Serving simulator: steady-state requests per second (warm memo)";
  let arch = edge in
  let model = Tf_workloads.Presets.bert in
  let costs = Tf_serving.Costs.create ~strategy:Strategies.Transfusion ~iterations:30 arch model in
  let classes = Tf_serving.Traffic.default_classes in
  List.iter
    (fun c -> ignore (Tf_serving.Costs.costs costs ~cls:c : Tf_serving.Costs.per_request))
    classes;
  let n = if quick then 400 else 2000 in
  let rate = 0.7 *. Tf_serving.Exp_serving.service_rate ~costs ~classes ~capacity:16 in
  let trace =
    Tf_serving.Traffic.generate ~classes ~seed:42 ~rate_qps:rate ~n
      (Tf_serving.Traffic.Bursty { mean_burst = 8; boost = 8. })
  in
  let run () =
    ignore
      (Tf_serving.Simulator.run ~capacity:16 ~costs ~policy:Tf_serving.Policy.continuous trace
        : Tf_serving.Simulator.report)
  in
  (* One untimed run warms the KV-feasibility memo the engine consults
     at every admission boundary. *)
  run ();
  let rounds = if quick then 3 else 10 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    run ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let total = rounds * n in
  let ns = wall *. 1e9 /. float_of_int total in
  Printf.printf "%-50s %16.1f ns/req   (%.0f req/s simulated, %d requests)\n"
    "serving/steady-state-qps" ns
    (float_of_int total /. wall)
    total;
  (* The advertised complexity must have held: a keying bug that made
     the memo miss would time 10k searches and call it the engine. *)
  let _, _, computes = Tf_serving.Costs.stats costs in
  if computes <> List.length classes then
    failwith
      (Printf.sprintf "serving bench: %d decode evaluations for %d distinct classes" computes
         (List.length classes));
  [ ("serving/steady-state-qps", ns, None) ]

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled: names are ASCII identifiers, values are
   numbers, so no escaping is needed beyond what printf provides)       *)

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

(* A Tf_obs snapshot as JSON object entries.  Metric names are plain
   ASCII ([a-z0-9._]), so no escaping is needed. *)
let snapshot_entries snap =
  List.map
    (fun (name, v) ->
      let value =
        match v with
        | Tf_obs.Counter_v n -> string_of_int n
        | Tf_obs.Gauge_v g -> json_float g
        | Tf_obs.Histogram_v { count; sum; _ } ->
            Printf.sprintf "{\"count\": %d, \"sum\": %s}" count (json_float sum)
      in
      Printf.sprintf "\"%s\": %s" name value)
    snap

let metrics_entries () = if not obs then [] else snapshot_entries (Tf_obs.snapshot ())

let write_json path ~steps ~micro =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"transfusion-bench/v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" (Tf_parallel.jobs ()));
  Buffer.add_string buf "  \"figures\": [\n";
  List.iteri
    (fun i (name, wall_s, delta) ->
      (* Per-step metric deltas (Tf_obs.Snapshot.diff), not cumulative
         totals: each figure's section records only what it did. *)
      let metrics =
        if delta = [] then ""
        else
          Printf.sprintf ", \"metrics\": {%s}" (String.concat ", " (snapshot_entries delta))
      in
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": \"%s\", \"wall_s\": %s%s}%s\n" name (json_float wall_s)
           metrics
           (if i = List.length steps - 1 then "" else ",")))
    steps;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"microbench\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n" name
           (json_float ns)
           (match r2 with Some r -> json_float r | None -> "null")
           (if i = List.length micro - 1 then "" else ",")))
    micro;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"metrics\": {\n";
  let entries = metrics_entries () in
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf "    %s%s\n" e (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let () =
  let steps = run_timed (figure_steps () @ ablation_steps ()) in
  let micro = microbench () in
  let micro = micro @ serve_bench () in
  let micro = micro @ serving_bench () in
  match json_path with
  | None -> ()
  | Some path ->
      write_json path ~steps ~micro;
      Printf.eprintf "bench: wrote %s\n%!" path
