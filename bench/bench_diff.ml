(* CI perf-regression guard: compare two bench JSON documents by name
   with a relative threshold (see Tf_report.Bench_diff for the schema
   and matching rules).

     bench_diff [--threshold 1.5] [--warn-only] BASELINE.json CURRENT.json

   Exit status: 0 when no matched entry regressed past the threshold (or
   --warn-only was given), 1 on regressions, 2 on usage/parse errors. *)

let usage () =
  prerr_endline "usage: bench_diff [--threshold RATIO] [--warn-only] BASELINE.json CURRENT.json";
  exit 2

let () =
  let threshold = ref 1.5 in
  let warn_only = ref false in
  let files = ref [] in
  let i = ref 1 in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
    | "--warn-only" -> warn_only := true
    | "--threshold" ->
        if !i + 1 >= Array.length Sys.argv then usage ();
        incr i;
        (match float_of_string_opt Sys.argv.(!i) with
        | Some t when t > 1. -> threshold := t
        | _ ->
            prerr_endline "bench_diff: --threshold must be a ratio above 1";
            exit 2)
    | s when String.length s > 0 && s.[0] = '-' -> usage ()
    | file -> files := file :: !files);
    incr i
  done;
  match List.rev !files with
  | [ baseline_path; current_path ] -> (
      try
        let baseline = Tf_report.Json_read.parse_file baseline_path in
        let current = Tf_report.Json_read.parse_file current_path in
        let report = Tf_report.Bench_diff.compare_docs ~threshold:!threshold ~baseline current in
        print_string (Tf_report.Bench_diff.render report);
        if Tf_report.Bench_diff.has_regressions report && not !warn_only then exit 1
      with
      | Tf_report.Json_read.Bad_json msg ->
          Printf.eprintf "bench_diff: bad JSON: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "bench_diff: %s\n" msg;
          exit 2)
  | _ -> usage ()
