(* CI perf-regression guard: compare two bench JSON documents by name
   with a relative threshold (see Tf_report.Bench_diff for the schema
   and matching rules).

     bench_diff [--threshold 1.5] [--warn-only] [--fail-on PREFIX=RATIO]...
                BASELINE.json CURRENT.json

   --fail-on makes the named benchmark family strict: a matched entry
   whose name starts with PREFIX and whose ratio exceeds RATIO fails the
   run even under --warn-only (the escape hatch for deterministic
   microbench families on noisy CI runners, where the global diff stays
   advisory).  Repeatable.

   Exit status: 0 when no matched entry regressed past the threshold (or
   --warn-only was given) and no --fail-on rule fired, 1 on regressions,
   2 on usage/parse errors. *)

let usage () =
  prerr_endline
    "usage: bench_diff [--threshold RATIO] [--warn-only] [--fail-on PREFIX=RATIO]... \
     BASELINE.json CURRENT.json";
  exit 2

let parse_fail_on s =
  match String.index_opt s '=' with
  | Some i when i > 0 -> (
      let prefix = String.sub s 0 i in
      let ratio = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt ratio with
      | Some r when r > 1. -> (prefix, r)
      | _ ->
          prerr_endline "bench_diff: --fail-on ratio must be a ratio above 1";
          exit 2)
  | _ ->
      prerr_endline "bench_diff: --fail-on expects PREFIX=RATIO";
      exit 2

let () =
  let threshold = ref 1.5 in
  let warn_only = ref false in
  let fail_on = ref [] in
  let files = ref [] in
  let i = ref 1 in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
    | "--warn-only" -> warn_only := true
    | "--threshold" ->
        if !i + 1 >= Array.length Sys.argv then usage ();
        incr i;
        (match float_of_string_opt Sys.argv.(!i) with
        | Some t when t > 1. -> threshold := t
        | _ ->
            prerr_endline "bench_diff: --threshold must be a ratio above 1";
            exit 2)
    | "--fail-on" ->
        if !i + 1 >= Array.length Sys.argv then usage ();
        incr i;
        fail_on := parse_fail_on Sys.argv.(!i) :: !fail_on
    | s when String.length s > 0 && s.[0] = '-' -> usage ()
    | file -> files := file :: !files);
    incr i
  done;
  match List.rev !files with
  | [ baseline_path; current_path ] -> (
      try
        let baseline = Tf_report.Json_read.parse_file baseline_path in
        let current = Tf_report.Json_read.parse_file current_path in
        let report = Tf_report.Bench_diff.compare_docs ~threshold:!threshold ~baseline current in
        print_string (Tf_report.Bench_diff.render report);
        let strict =
          Tf_report.Bench_diff.strict_failures ~rules:(List.rev !fail_on) report
        in
        List.iter
          (fun (row : Tf_report.Bench_diff.row) ->
            Printf.printf "FAIL (--fail-on): %s %.2fx\n" row.Tf_report.Bench_diff.name
              row.Tf_report.Bench_diff.ratio)
          strict;
        if strict <> [] then exit 1;
        if Tf_report.Bench_diff.has_regressions report && not !warn_only then exit 1
      with
      | Tf_report.Json_read.Bad_json msg ->
          Printf.eprintf "bench_diff: bad JSON: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "bench_diff: %s\n" msg;
          exit 2)
  | _ -> usage ()
