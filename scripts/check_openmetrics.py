#!/usr/bin/env python3
"""Validate an OpenMetrics/Prometheus text exposition.

Checks the line grammar and the structural conventions the TransFusion
daemon's `metrics --format prometheus` op promises:

  * every line is a `# HELP`/`# TYPE` comment, a sample, or `# EOF`;
  * `# EOF` is the last line and appears exactly once;
  * at most one `# TYPE` per family, and every sample belongs to a
    declared family;
  * counter samples carry the `_total` suffix (the family name in the
    `# TYPE` line does not);
  * histogram bucket series are cumulative (non-decreasing in `le`
    order), contain an `le="+Inf"` bucket equal to `_count`, and come
    with `_sum` and `_count`.

Usage: check_openmetrics.py FILE [--require FAMILY ...]

`--require` asserts a family was both declared and sampled (e.g.
`--require serve_requests --require process_max_rss_bytes`).
"""

import argparse
import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\\n])*"'
SAMPLE_RE = re.compile(
    rf"^({NAME})(\{{{LABEL}(?:,{LABEL})*\}})? "
    r"(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|[+-]Inf|NaN)$"
)
HELP_RE = re.compile(rf"^# HELP ({NAME}) .+$")
TYPE_RE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram|summary|unknown)$")
LE_RE = re.compile(r'le="((?:\\.|[^"\\])*)"')


def fail(lineno, line, why):
    sys.stderr.write(f"check_openmetrics: line {lineno}: {why}\n  {line}\n")
    sys.exit(1)


def parse_value(s):
    if s == "+Inf":
        return float("inf")
    if s == "-Inf":
        return float("-inf")
    return float(s)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("file")
    ap.add_argument("--require", action="append", default=[], metavar="FAMILY")
    args = ap.parse_args()

    with open(args.file, encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        sys.exit("check_openmetrics: empty exposition")

    types = {}  # family -> kind
    samples = []  # (lineno, name, labels_str, value)
    eof_seen = False

    for lineno, line in enumerate(lines, 1):
        if eof_seen:
            fail(lineno, line, "content after # EOF")
        if line == "# EOF":
            eof_seen = True
            continue
        if line.startswith("# HELP "):
            if not HELP_RE.match(line):
                fail(lineno, line, "malformed HELP line")
            continue
        if line.startswith("# TYPE "):
            m = TYPE_RE.match(line)
            if not m:
                fail(lineno, line, "malformed TYPE line")
            family, kind = m.group(1), m.group(2)
            if family in types:
                fail(lineno, line, f"duplicate TYPE for family {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            fail(lineno, line, "unrecognised comment line")
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "malformed sample line")
        samples.append((lineno, m.group(1), m.group(2) or "", m.group(3)))

    if not eof_seen:
        sys.exit("check_openmetrics: missing # EOF terminator")

    def family_of(name):
        """Resolve a sample name to its declared family and expected suffix."""
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)], suffix
        if name in types:
            return name, ""
        return None, None

    sampled = set()
    # histogram accounting: (family, labels-minus-le) -> {"buckets": [...], "sum": x, "count": n}
    hists = {}

    for lineno, name, labels, value_s in samples:
        family, suffix = family_of(name)
        if family is None:
            fail(lineno, name, f"sample {name} has no declared family")
        kind = types[family]
        sampled.add(family)
        value = parse_value(value_s)
        if kind == "counter":
            if suffix != "_total":
                fail(lineno, name, f"counter sample must end in _total (family {family})")
        elif kind == "gauge":
            if suffix != "":
                fail(lineno, name, f"gauge sample must use the bare family name")
        elif kind == "histogram":
            if suffix not in ("_bucket", "_sum", "_count"):
                fail(lineno, name, f"histogram sample must be _bucket/_sum/_count")
            le = None
            rest = labels
            if suffix == "_bucket":
                m = LE_RE.search(labels)
                if not m:
                    fail(lineno, name, "_bucket sample without an le label")
                le = parse_value(m.group(1))
                rest = LE_RE.sub("", labels)
            # Normalise so `{op="x",le="1"}` and `{op="x"}` share a key.
            rest = rest.strip("{}").strip(",")
            key = (family, rest)
            acc = hists.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if suffix == "_bucket":
                acc["buckets"].append((lineno, le, value))
            else:
                acc[suffix[1:]] = (lineno, value)

    for (family, _), acc in hists.items():
        buckets = acc["buckets"]
        if not buckets:
            sys.exit(f"check_openmetrics: histogram {family} has no _bucket series")
        prev = None
        for lineno, le, value in buckets:
            if prev is not None and value < prev:
                fail(lineno, family, "bucket series is not cumulative")
            prev = value
        inf_buckets = [v for _, le, v in buckets if le == float("inf")]
        if not inf_buckets:
            sys.exit(f"check_openmetrics: histogram {family} missing le=\"+Inf\"")
        if acc["count"] is None:
            sys.exit(f"check_openmetrics: histogram {family} missing _count")
        if acc["sum"] is None:
            sys.exit(f"check_openmetrics: histogram {family} missing _sum")
        if inf_buckets[-1] != acc["count"][1]:
            sys.exit(
                f"check_openmetrics: histogram {family}: +Inf bucket "
                f"{inf_buckets[-1]} != _count {acc['count'][1]}"
            )

    for family in args.require:
        if family not in types:
            sys.exit(f"check_openmetrics: required family {family} not declared")
        if family not in sampled:
            sys.exit(f"check_openmetrics: required family {family} has no samples")

    print(
        f"check_openmetrics: OK — {len(types)} families, {len(samples)} samples, "
        f"{len(hists)} histogram series"
    )


if __name__ == "__main__":
    main()
