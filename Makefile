.PHONY: all build test lint check check-range figures bench-quick explain clean

all: build

build:
	dune build

test:
	dune runtest

lint: build
	dune exec bin/transfusion_cli.exe -- lint

# The gate CI runs: full build, test suite, and the static analyzer
# over every built-in preset.
check:
	dune build @check-all

# Range certification: certify the bucketed serving band once instead of
# linting every bucket, then re-validate the emitted certificate with
# the independent checker.
check-range:
	dune exec bin/transfusion_cli.exe -- check --range 512:16384 --model T5 --json cert.json
	dune exec bin/transfusion_cli.exe -- check --validate cert.json

figures:
	dune exec bin/transfusion_cli.exe -- figures --quick

# Reduced-sweep benchmark with machine-readable timings (bench.json).
bench-quick:
	dune exec bench/main.exe -- --quick --json bench.json

# Simulation telemetry: per-Einsum stall attribution + search
# convergence (explain.json) and a Perfetto-loadable simulated
# timeline (sim-trace.json).
explain:
	dune exec bin/transfusion_cli.exe -- explain \
		--json explain.json --sim-trace sim-trace.json

clean:
	dune clean
