.PHONY: all build test lint check figures bench-quick clean

all: build

build:
	dune build

test:
	dune runtest

lint: build
	dune exec bin/transfusion_cli.exe -- lint

# The gate CI runs: full build, test suite, and the static analyzer
# over every built-in preset.
check:
	dune build @check-all

figures:
	dune exec bin/transfusion_cli.exe -- figures --quick

# Reduced-sweep benchmark with machine-readable timings (bench.json).
bench-quick:
	dune exec bench/main.exe -- --quick --json bench.json

clean:
	dune clean
