.PHONY: all build test lint check figures bench-quick explain clean

all: build

build:
	dune build

test:
	dune runtest

lint: build
	dune exec bin/transfusion_cli.exe -- lint

# The gate CI runs: full build, test suite, and the static analyzer
# over every built-in preset.
check:
	dune build @check-all

figures:
	dune exec bin/transfusion_cli.exe -- figures --quick

# Reduced-sweep benchmark with machine-readable timings (bench.json).
bench-quick:
	dune exec bench/main.exe -- --quick --json bench.json

# Simulation telemetry: per-Einsum stall attribution + search
# convergence (explain.json) and a Perfetto-loadable simulated
# timeline (sim-trace.json).
explain:
	dune exec bin/transfusion_cli.exe -- explain \
		--json explain.json --sim-trace sim-trace.json

clean:
	dune clean
